// Hilbert-range partitioned graph store: continent-scale serving.
//
// The relational store is capped at 32767 nodes by R's 16-bit node ids
// (the paper's T_r = 16-byte tuple). A continent map (~10^6 nodes) is
// served by K region stores instead, each a full RelationalGraphStore
// over a contiguous range of the global Hilbert order:
//
//   1. The ATISG2 file is streamed through an external sort by Hilbert
//      key (storage/spill_sort.h; bounded memory, every block metered).
//   2. The sorted node stream is cut into K ranges of at most
//      `max_partition_nodes`. Each cut snaps to the largest Hilbert-key
//      gap within a window around the equal-count position — key gaps
//      fall in the empty space between cities, so cuts cross only the
//      few freeway corridors instead of slicing through street grids.
//   3. Each partition is materialised one at a time (never the whole
//      map): owned nodes get dense local ids; an edge leaving the
//      partition keeps its tuple in the owner's S relation but points at
//      a "ghost" local id — a stub node carrying the remote endpoint's
//      coordinates — with a per-partition ghost -> global table.
//   4. Cross-partition routing is stitched exactly through a boundary
//      overlay (the PR-8 idea at inter-partition scale): per partition,
//      a customized dense matrix of within-partition shortest costs from
//      every entry boundary node to every exit boundary node, plus the
//      cross edges themselves. A query runs restricted Dijkstra in the
//      source partition, Dijkstra over the in-memory overlay, and a
//      multi-source restricted Dijkstra in the target partition — the
//      standard three-phase argument makes the stitched cost equal to
//      the single-store answer.
//
// All partitions share one BufferPool (and so one metered DiskManager):
// the cache is a global resource, partitioning only the tuple space.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/relational_graph.h"
#include "storage/buffer_pool.h"

namespace atis::graph {

struct PartitionedStoreOptions {
  /// Upper bound on owned nodes per partition. Ghosts ride on top, so
  /// keep comfortably under the 32767-node store cap.
  size_t max_partition_nodes = 24000;
  /// Run-buffer budget for the build's external sorts.
  size_t sort_budget_bytes = 4u << 20;
  /// Cut-snapping window as a fraction of the equal-count partition
  /// size: the cut lands on the largest key gap within +/- this window.
  double gap_window = 0.10;
  /// Threads for overlay customization (0 = hardware concurrency).
  unsigned customize_threads = 0;
};

class PartitionedGraphStore {
 public:
  struct RouteCost {
    bool found = false;
    double cost = 0.0;
  };

  /// Per-query work counters for the stitched path, for metrics.
  struct QueryStats {
    uint64_t settled_source = 0;   ///< phase-1 settled store nodes
    uint64_t settled_overlay = 0;  ///< phase-2 settled boundary nodes
    uint64_t settled_target = 0;   ///< phase-3 settled store nodes
    bool cross_partition = false;
  };

  /// Streams `path` (ATISG1/ATISG2) into a partitioned store backed by
  /// `pool`, then customizes the boundary overlay. Bounded memory: at no
  /// point is more than one partition's subgraph resident.
  static Result<std::unique_ptr<PartitionedGraphStore>> Build(
      const std::string& path, storage::BufferPool* pool,
      const PartitionedStoreOptions& options = {});

  size_t num_partitions() const { return partitions_.size(); }
  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  size_t num_boundary_nodes() const { return overlay_nodes_.size(); }
  size_t num_cross_edges() const { return num_cross_edges_; }

  /// Partition owning `global`, or -1 for an out-of-range id.
  int PartitionOf(NodeId global) const;
  RelationalGraphStore& partition(size_t p) { return *partitions_[p].store; }
  const RelationalGraphStore& partition(size_t p) const {
    return *partitions_[p].store;
  }
  /// Owned (non-ghost) nodes of partition p.
  size_t partition_num_owned(size_t p) const {
    return partitions_[p].num_owned;
  }

  /// Adjacency of a global node id, endpoints translated back to global
  /// ids. Served by the owning partition's clustered fetch (metered).
  Result<std::vector<RelationalGraphStore::EdgeRow>> FetchAdjacency(
      NodeId global) const;

  /// Exact point-to-point cost via the three-phase overlay stitch.
  /// Phases 1 and 3 run against the partition stores (metered); phase 2
  /// is in-memory. Thread-safe: no store working-state is touched.
  Result<RouteCost> StitchedDistance(NodeId source, NodeId destination,
                                     QueryStats* stats = nullptr) const;

  /// Reference path: plain Dijkstra over FetchAdjacency with in-memory
  /// labels. Exact by construction; the unpartitioned baseline the
  /// stitched path is benchmarked against. Thread-safe.
  Result<RouteCost> GlobalDijkstra(NodeId source, NodeId destination,
                                   QueryStats* stats = nullptr) const;

 private:
  struct Partition {
    std::unique_ptr<RelationalGraphStore> store;
    uint32_t num_owned = 0;
    /// Local id -> global id, owned nodes then ghosts.
    std::vector<NodeId> local_to_global;
    /// Boundary nodes (global ids, sorted): targets of incoming cross
    /// edges (entries) and sources of outgoing ones (exits).
    std::vector<NodeId> entries;
    std::vector<NodeId> exits;
    /// Customized within-partition shortest costs, entries x exits,
    /// row-major; +inf where unreachable without leaving the partition.
    std::vector<double> entry_exit_cost;
  };

  PartitionedGraphStore() = default;

  /// Packed owner of a global id: (partition << 16) | local.
  static constexpr uint32_t kUnmapped = UINT32_MAX;
  uint32_t packed(NodeId global) const {
    return global_map_[static_cast<size_t>(global)];
  }
  NodeId LocalToGlobal(size_t p, NodeId local) const {
    return partitions_[p].local_to_global[static_cast<size_t>(local)];
  }

  /// Restricted Dijkstra inside partition p from `seeds` (local id,
  /// initial dist), over the partition store's adjacency (metered).
  /// Returns the final distance labels (owned + ghost slots; ghosts are
  /// never expanded). `settled` counts pops.
  Result<std::vector<double>> RestrictedDijkstra(
      size_t p, const std::vector<std::pair<NodeId, double>>& seeds,
      uint64_t* settled) const;

  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  size_t num_cross_edges_ = 0;
  std::vector<Partition> partitions_;
  /// Global id -> packed(partition, local), kUnmapped for invalid ids.
  std::vector<uint32_t> global_map_;
  /// Overlay graph over boundary nodes: ids, global->overlay index, and
  /// adjacency (entry->exit customized arcs + cross edges).
  std::vector<NodeId> overlay_nodes_;
  std::vector<std::vector<std::pair<uint32_t, double>>> overlay_adj_;
  /// Overlay index of a global id, or -1 (parallel to global_map_; dense
  /// int32 keeps lookups O(1) without a hash map).
  std::vector<int32_t> overlay_index_;
};

}  // namespace atis::graph
