#include "graph/spatial_layout.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace atis::graph {

const char* StoreLayoutName(StoreLayout layout) {
  switch (layout) {
    case StoreLayout::kRowOrder:
      return "roworder";
    case StoreLayout::kHilbert:
      return "hilbert";
  }
  return "unknown";
}

bool StoreLayoutFromName(std::string_view name, StoreLayout* out) {
  if (name == "roworder") {
    *out = StoreLayout::kRowOrder;
    return true;
  }
  if (name == "hilbert") {
    *out = StoreLayout::kHilbert;
    return true;
  }
  return false;
}

uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the sub-curve enters/exits correctly.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

HilbertKeyMapper HilbertKeyMapper::FromBounds(double min_x, double min_y,
                                              double max_x, double max_y) {
  HilbertKeyMapper m;
  const double ext_x = max_x - min_x;
  const double ext_y = max_y - min_y;
  if (!(ext_x > 0.0) && !(ext_y > 0.0)) return m;  // degenerate
  m.min_x = min_x;
  m.min_y = min_y;
  const double side = static_cast<double>((1u << kHilbertOrder) - 1);
  m.scale = side / std::max(ext_x, ext_y);
  return m;
}

uint64_t HilbertKeyMapper::Key(double x, double y) const {
  if (degenerate()) return 0;
  const auto cx = static_cast<uint32_t>(std::llround((x - min_x) * scale));
  const auto cy = static_cast<uint32_t>(std::llround((y - min_y) * scale));
  return HilbertIndex(kHilbertOrder, cx, cy);
}

std::vector<NodeId> ComputeNodeOrder(const Graph& g, StoreLayout layout) {
  const NodeId n = static_cast<NodeId>(g.num_nodes());
  std::vector<NodeId> order(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) order[static_cast<size_t>(u)] = u;
  if (layout == StoreLayout::kRowOrder || n == 0) return order;

  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < n; ++u) {
    const Point& p = g.point(u);
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const HilbertKeyMapper mapper =
      HilbertKeyMapper::FromBounds(min_x, min_y, max_x, max_y);
  if (mapper.degenerate()) {
    // Degenerate geometry: no spatial signal; id order is the grid-cell
    // fallback (consecutive ids already share cells for generated maps).
    return order;
  }
  std::vector<uint64_t> key(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    const Point& p = g.point(u);
    key[static_cast<size_t>(u)] = mapper.Key(p.x, p.y);
  }
  std::sort(order.begin(), order.end(), [&key](NodeId a, NodeId b) {
    const uint64_t ka = key[static_cast<size_t>(a)];
    const uint64_t kb = key[static_cast<size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });
  return order;
}

}  // namespace atis::graph
