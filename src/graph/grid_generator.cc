#include "graph/grid_generator.h"

#include <cstdlib>

namespace atis::graph {

std::string_view GridCostModelName(GridCostModel m) {
  switch (m) {
    case GridCostModel::kUniform:
      return "uniform";
    case GridCostModel::kVariance20:
      return "20% variance";
    case GridCostModel::kSkewed:
      return "skewed";
  }
  return "?";
}

Result<Graph> GridGraphGenerator::Generate(const Options& options) {
  const int k = options.k;
  if (k < 2) {
    return Status::InvalidArgument("grid side must be at least 2");
  }
  if (options.variance_fraction < 0.0) {
    return Status::InvalidArgument("variance fraction must be >= 0");
  }
  if (options.skew_cheap_cost <= 0.0) {
    return Status::InvalidArgument("skew cheap cost must be > 0");
  }

  Graph g;
  for (int row = 0; row < k; ++row) {
    for (int col = 0; col < k; ++col) {
      g.AddNode(static_cast<double>(col), static_cast<double>(row));
    }
  }

  Rng rng(options.seed);
  auto edge_cost = [&](int row_a, int col_a, int row_b, int col_b) {
    switch (options.cost_model) {
      case GridCostModel::kUniform:
        return 1.0;
      case GridCostModel::kVariance20:
        return 1.0 + options.variance_fraction * rng.NextDouble();
      case GridCostModel::kSkewed: {
        // Cheap corridor: the bottom row (row 0) and the right column
        // (col k-1), i.e. the paper's edges [(1,i),(1,i+1)] and
        // [(k,i),(k,i+1)] in 1-based notation.
        const bool bottom_row = (row_a == 0 && row_b == 0);
        const bool right_col = (col_a == k - 1 && col_b == k - 1);
        return (bottom_row || right_col) ? options.skew_cheap_cost : 1.0;
      }
    }
    return 1.0;
  };

  // Horizontal then vertical edges, in deterministic row-major order.
  for (int row = 0; row < k; ++row) {
    for (int col = 0; col + 1 < k; ++col) {
      ATIS_RETURN_NOT_OK(g.AddUndirectedEdge(NodeAt(k, row, col),
                                             NodeAt(k, row, col + 1),
                                             edge_cost(row, col, row, col + 1)));
    }
  }
  for (int row = 0; row + 1 < k; ++row) {
    for (int col = 0; col < k; ++col) {
      ATIS_RETURN_NOT_OK(g.AddUndirectedEdge(NodeAt(k, row, col),
                                             NodeAt(k, row + 1, col),
                                             edge_cost(row, col, row + 1, col)));
    }
  }
  return g;
}

GridQuery GridGraphGenerator::HorizontalQuery(int k) {
  return {NodeAt(k, 0, 0), NodeAt(k, 0, k - 1)};
}

GridQuery GridGraphGenerator::SemiDiagonalQuery(int k) {
  return {NodeAt(k, 0, 0), NodeAt(k, k / 2, k - 1)};
}

GridQuery GridGraphGenerator::DiagonalQuery(int k) {
  return {NodeAt(k, 0, 0), NodeAt(k, k - 1, k - 1)};
}

int GridGraphGenerator::QueryHops(const GridQuery& q, int k) {
  const int row_s = q.source / k;
  const int col_s = q.source % k;
  const int row_d = q.destination / k;
  const int col_d = q.destination % k;
  return std::abs(row_d - row_s) + std::abs(col_d - col_s);
}

}  // namespace atis::graph
