#include "graph/relational_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "graph/graph_io.h"
#include "storage/spill_sort.h"

namespace atis::graph {

using relational::Field;
using relational::FieldType;
using relational::Schema;
using relational::Tuple;

namespace {
// Field positions in the packed tuples (see EdgeSchema / NodeSchema).
constexpr size_t kEBegin = 0;
constexpr size_t kEEnd = 1;
constexpr size_t kECost = 2;
constexpr size_t kNId = 0;
constexpr size_t kNX = 1;
constexpr size_t kNY = 2;
constexpr size_t kNStatus = 3;
constexpr size_t kNPred = 4;
constexpr size_t kNCost = 5;

int64_t FixedPoint(double coord) {
  return static_cast<int64_t>(
      std::llround(coord * RelationalGraphStore::kCoordScale));
}

// External-sort records for the streaming load (storage/spill_sort.h).
// Node tuples sort by Hilbert key with ties broken by insertion (= id)
// order via the sorter's stability — the same (key, id) order
// ComputeNodeOrder produces. Edge tuples sort by the begin node's rank in
// that order; stability preserves each node's file-order adjacency, which
// is the Neighbors order the in-memory Load preserves.
struct NodeSpillRecord {
  uint64_t key;
  NodeId id;
  double x;
  double y;
};

struct EdgeSpillRecord {
  uint64_t key;  ///< rank of the begin node in the physical node order
  NodeId u;
  NodeId v;
  double cost;
};
}  // namespace

Schema RelationalGraphStore::EdgeSchema() {
  // Packed size 12 bytes; padded to the paper's T_s = 32 (the original
  // stored additional per-segment attributes: speed, occupancy, road type).
  return Schema({{"begin_node", FieldType::kInt32},
                 {"end_node", FieldType::kInt32},
                 {"edge_cost", FieldType::kFloat}},
                /*tuple_size_override=*/32);
}

Schema RelationalGraphStore::NodeSchema() {
  // Packed size 13 bytes; padded to the paper's T_r = 16.
  return Schema({{"node_id", FieldType::kInt16},
                 {"x", FieldType::kInt16},
                 {"y", FieldType::kInt16},
                 {"status", FieldType::kInt8},
                 {"pred", FieldType::kInt16},
                 {"path_cost", FieldType::kFloat}},
                /*tuple_size_override=*/16);
}

Schema RelationalGraphStore::LandmarkDistSchema() {
  // Packed size 22 bytes; padded to 24 (T_l). Distances are 8-byte floats
  // so persisted ALT bounds stay exact (see LandmarkDistRow).
  return Schema({{"landmark_ord", FieldType::kInt16},
                 {"landmark_node", FieldType::kInt16},
                 {"node_id", FieldType::kInt16},
                 {"dist_from", FieldType::kDouble},
                 {"dist_to", FieldType::kDouble}},
                /*tuple_size_override=*/24);
}

Schema RelationalGraphStore::OverlayCellSchema() {
  // Packed size 5 bytes; padded to 8 so a block holds an even power of
  // two of cell-assignment tuples.
  return Schema({{"node_id", FieldType::kInt16},
                 {"cell_id", FieldType::kInt16},
                 {"is_boundary", FieldType::kInt8}},
                /*tuple_size_override=*/8);
}

Schema RelationalGraphStore::OverlayShortcutSchema() {
  // Packed size 6 bytes; padded to 8.
  return Schema({{"cell_id", FieldType::kInt16},
                 {"from_node", FieldType::kInt16},
                 {"to_node", FieldType::kInt16}},
                /*tuple_size_override=*/8);
}

RelationalGraphStore::RelationalGraphStore(storage::BufferPool* pool)
    : s_("S", EdgeSchema(), pool), r_("R", NodeSchema(), pool) {}

Status RelationalGraphStore::Load(const Graph& g) {
  return Load(g, LoadOptions{});
}

Status RelationalGraphStore::Load(const Graph& g,
                                  const LoadOptions& options) {
  if (loaded_) {
    return Status::FailedPrecondition("graph store already loaded");
  }
  if (g.num_nodes() > 32767) {
    return Status::InvalidArgument(
        "R's 16-bit node ids limit the store to 32767 nodes");
  }
  // Physical insertion order. kRowOrder yields the identity permutation,
  // keeping the insertion sequence (and therefore every page assignment)
  // bit-identical to the paper-mode store.
  const std::vector<NodeId> order = ComputeNodeOrder(g, options.layout);
  for (const NodeId u : order) {
    const Point& p = g.point(u);
    if (std::abs(FixedPoint(p.x)) > 32767 ||
        std::abs(FixedPoint(p.y)) > 32767) {
      return Status::OutOfRange("coordinate exceeds fixed-point range");
    }
    NodeRow row;
    row.id = u;
    row.x = p.x;
    row.y = p.y;
    row.status = NodeStatus::kNull;
    row.pred = kInvalidNode;
    row.path_cost = std::numeric_limits<double>::infinity();
    ATIS_RETURN_NOT_OK(r_.Insert(ToTuple(row)).status());
  }
  // Edge tuples are grouped by begin node in the same physical order;
  // within a node the g.Neighbors order is preserved, so per-key hash
  // chains — and hence FetchAdjacency results — match across layouts.
  adjacency_pages_.assign(g.num_nodes(), {});
  adjacency_rids_.assign(g.num_nodes(), {});
  for (const NodeId u : order) {
    std::vector<storage::PageId>& pages =
        adjacency_pages_[static_cast<size_t>(u)];
    std::vector<storage::RecordId>& rids =
        adjacency_rids_[static_cast<size_t>(u)];
    for (const Edge& e : g.Neighbors(u)) {
      ATIS_ASSIGN_OR_RETURN(storage::RecordId rid,
                            s_.Insert(ToTuple(EdgeRow{u, e.to, e.cost})));
      if (pages.empty() || pages.back() != rid.page) {
        pages.push_back(rid.page);
      }
      rids.push_back(rid);
    }
  }
  ATIS_RETURN_NOT_OK(s_.CreateHashIndex(
      kBeginField, std::max<size_t>(16, g.num_nodes() / 8)));
  ATIS_RETURN_NOT_OK(r_.BuildIsamIndex(kNodeIdField));
  layout_ = options.layout;
  loaded_ = true;
  return Status::OK();
}

Status RelationalGraphStore::LoadStreaming(const std::string& path) {
  ATIS_ASSIGN_OR_RETURN(StreamingGraphReader probe,
                        StreamingGraphReader::Open(path));
  LoadOptions options;
  options.layout = probe.layout();
  return LoadStreaming(path, options);
}

Status RelationalGraphStore::LoadStreaming(const std::string& path,
                                           const LoadOptions& options) {
  if (loaded_) {
    return Status::FailedPrecondition("graph store already loaded");
  }
  storage::DiskManager* disk = s_.pool()->disk();
  // Pass 1: stream the node section once for the bounding box — the
  // Hilbert key function needs the global extent before the first key —
  // and the coordinate-range check Load performs.
  ATIS_ASSIGN_OR_RETURN(StreamingGraphReader pass1,
                        StreamingGraphReader::Open(path));
  if (pass1.num_nodes() > 32767) {
    return Status::InvalidArgument(
        "R's 16-bit node ids limit the store to 32767 nodes");
  }
  const NodeId n = static_cast<NodeId>(pass1.num_nodes());
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < n; ++u) {
    StreamingGraphReader::NodeRecord rec;
    ATIS_RETURN_NOT_OK(pass1.NextNode(&rec));
    if (std::abs(FixedPoint(rec.x)) > 32767 ||
        std::abs(FixedPoint(rec.y)) > 32767) {
      return Status::OutOfRange("coordinate exceeds fixed-point range");
    }
    min_x = std::min(min_x, rec.x);
    min_y = std::min(min_y, rec.y);
    max_x = std::max(max_x, rec.x);
    max_y = std::max(max_y, rec.y);
  }
  // kRowOrder (and the degenerate-bbox fallback) leave every key 0, so
  // the stable sort degenerates to file order — the identity permutation,
  // exactly what ComputeNodeOrder returns for those cases.
  HilbertKeyMapper mapper;
  if (options.layout == StoreLayout::kHilbert && n > 0) {
    mapper = HilbertKeyMapper::FromBounds(min_x, min_y, max_x, max_y);
  }
  // Pass 2: external-sort the node tuples and insert them in sorted
  // order; the same handle then continues into the edge section.
  ATIS_ASSIGN_OR_RETURN(StreamingGraphReader reader,
                        StreamingGraphReader::Open(path));
  storage::SpillSorter<NodeSpillRecord> node_sorter(
      disk, options.sort_budget_bytes);
  for (NodeId u = 0; u < n; ++u) {
    StreamingGraphReader::NodeRecord rec;
    ATIS_RETURN_NOT_OK(reader.NextNode(&rec));
    ATIS_RETURN_NOT_OK(
        node_sorter.Add(NodeSpillRecord{mapper.Key(rec.x, rec.y), u, rec.x,
                                        rec.y}));
  }
  ATIS_RETURN_NOT_OK(node_sorter.Finish());
  std::vector<NodeId> rank_of(static_cast<size_t>(n), kInvalidNode);
  {
    NodeSpillRecord rec{};
    NodeId rank = 0;
    while (true) {
      ATIS_ASSIGN_OR_RETURN(bool more, node_sorter.Next(&rec));
      if (!more) break;
      rank_of[static_cast<size_t>(rec.id)] = rank++;
      NodeRow row;
      row.id = rec.id;
      row.x = rec.x;
      row.y = rec.y;
      row.status = NodeStatus::kNull;
      row.pred = kInvalidNode;
      row.path_cost = std::numeric_limits<double>::infinity();
      ATIS_RETURN_NOT_OK(r_.Insert(ToTuple(row)).status());
    }
  }
  // Edge tuples, keyed by the begin node's rank.
  ATIS_RETURN_NOT_OK(reader.BeginEdges());
  storage::SpillSorter<EdgeSpillRecord> edge_sorter(
      disk, options.sort_budget_bytes);
  const uint64_t num_edges = reader.num_edges();
  for (uint64_t i = 0; i < num_edges; ++i) {
    StreamingGraphReader::EdgeRecord e;
    ATIS_RETURN_NOT_OK(reader.NextEdge(&e));
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
      return Status::Corruption("edge endpoint out of range in " + path);
    }
    ATIS_RETURN_NOT_OK(edge_sorter.Add(EdgeSpillRecord{
        static_cast<uint64_t>(rank_of[static_cast<size_t>(e.u)]), e.u, e.v,
        e.cost}));
  }
  ATIS_RETURN_NOT_OK(edge_sorter.Finish());
  adjacency_pages_.assign(static_cast<size_t>(n), {});
  adjacency_rids_.assign(static_cast<size_t>(n), {});
  {
    EdgeSpillRecord rec{};
    while (true) {
      ATIS_ASSIGN_OR_RETURN(bool more, edge_sorter.Next(&rec));
      if (!more) break;
      ATIS_ASSIGN_OR_RETURN(
          storage::RecordId rid,
          s_.Insert(ToTuple(EdgeRow{rec.u, rec.v, rec.cost})));
      std::vector<storage::PageId>& pages =
          adjacency_pages_[static_cast<size_t>(rec.u)];
      if (pages.empty() || pages.back() != rid.page) {
        pages.push_back(rid.page);
      }
      adjacency_rids_[static_cast<size_t>(rec.u)].push_back(rid);
    }
  }
  ATIS_RETURN_NOT_OK(s_.CreateHashIndex(
      kBeginField, std::max<size_t>(16, static_cast<size_t>(n) / 8)));
  ATIS_RETURN_NOT_OK(r_.BuildIsamIndex(kNodeIdField));
  layout_ = options.layout;
  loaded_ = true;
  return Status::OK();
}

const std::vector<storage::PageId>& RelationalGraphStore::AdjacencyPageIds(
    NodeId u) const {
  static const std::vector<storage::PageId> kEmpty;
  if (u < 0 || static_cast<size_t>(u) >= adjacency_pages_.size()) {
    return kEmpty;
  }
  return adjacency_pages_[static_cast<size_t>(u)];
}

Result<std::vector<RelationalGraphStore::EdgeRow>>
RelationalGraphStore::FetchAdjacency(NodeId u) const {
  // Clustered access path (see header): only the node's own data pages
  // are fetched; the id-hashed bucket pages the paper-mode lookup walks —
  // spatially random by construction, and the dominant distinct-block
  // cost of a search — are skipped entirely.
  if (layout_ == StoreLayout::kHilbert && u >= 0 &&
      static_cast<size_t>(u) < adjacency_rids_.size()) {
    const std::vector<storage::RecordId>& rids =
        adjacency_rids_[static_cast<size_t>(u)];
    std::vector<EdgeRow> out;
    out.reserve(rids.size());
    for (const storage::RecordId rid : rids) {
      ATIS_ASSIGN_OR_RETURN(relational::Tuple t, s_.Get(rid));
      out.push_back(EdgeFromTuple(t));
    }
    return out;
  }
  ATIS_ASSIGN_OR_RETURN(auto matches,
                        relational::SelectIndex(s_, kBeginField, u));
  std::vector<EdgeRow> out;
  out.reserve(matches.size());
  for (const auto& m : matches) {
    out.push_back(EdgeFromTuple(m.tuple));
  }
  return out;
}

Result<std::pair<storage::RecordId, RelationalGraphStore::NodeRow>>
RelationalGraphStore::GetNode(NodeId u) const {
  ATIS_ASSIGN_OR_RETURN(auto rids, r_.IndexLookup(kNodeIdField, u));
  if (rids.empty()) {
    return Status::NotFound("node " + std::to_string(u) + " not in R");
  }
  ATIS_ASSIGN_OR_RETURN(Tuple t, r_.Get(rids.front()));
  return std::make_pair(rids.front(), NodeFromTuple(t));
}

Status RelationalGraphStore::UpdateNode(storage::RecordId rid,
                                        const NodeRow& row) {
  return r_.Update(rid, ToTuple(row));
}

Status RelationalGraphStore::UpdateEdgeCost(NodeId u, NodeId v,
                                            double cost) {
  if (cost < 0.0) {
    return Status::InvalidArgument("edge cost must be non-negative");
  }
  ATIS_ASSIGN_OR_RETURN(auto rids, s_.IndexLookup(kBeginField, u));
  for (const storage::RecordId rid : rids) {
    ATIS_ASSIGN_OR_RETURN(Tuple t, s_.Get(rid));
    if (static_cast<NodeId>(relational::AsInt(t[kEEnd])) != v) continue;
    t[kECost] = cost;
    return s_.Update(rid, t);
  }
  return Status::NotFound("segment " + std::to_string(u) + " -> " +
                          std::to_string(v) + " not in S");
}

Status RelationalGraphStore::StoreLandmarkDistances(
    const std::vector<LandmarkDistRow>& rows) {
  if (landmark_ != nullptr) {
    ATIS_RETURN_NOT_OK(landmark_->Clear(/*charge=*/true));
    landmark_.reset();
  }
  landmark_ = std::make_unique<relational::Relation>(
      "L", LandmarkDistSchema(), s_.pool(), /*charge_create=*/true);
  for (const LandmarkDistRow& row : rows) {
    ATIS_RETURN_NOT_OK(landmark_->Insert(ToTuple(row)).status());
  }
  return Status::OK();
}

Result<std::vector<RelationalGraphStore::LandmarkDistRow>>
RelationalGraphStore::LoadLandmarkDistances() const {
  if (landmark_ == nullptr) {
    return Status::FailedPrecondition("no landmarkDist relation stored");
  }
  std::vector<LandmarkDistRow> rows;
  rows.reserve(landmark_->num_tuples());
  relational::Relation::Cursor c = landmark_->Scan();
  for (; c.Valid(); c.Next()) {
    rows.push_back(LandmarkDistFromTuple(c.tuple()));
  }
  // A scan ended by a storage fault must not yield a partial table.
  ATIS_RETURN_NOT_OK(c.status());
  return rows;
}

Status RelationalGraphStore::StoreOverlayTopology(
    const std::vector<OverlayCellRow>& cells,
    const std::vector<OverlayShortcutRow>& links) {
  if (overlay_cells_ != nullptr) {
    ATIS_RETURN_NOT_OK(overlay_cells_->Clear(/*charge=*/true));
    overlay_cells_.reset();
  }
  if (overlay_shortcuts_ != nullptr) {
    ATIS_RETURN_NOT_OK(overlay_shortcuts_->Clear(/*charge=*/true));
    overlay_shortcuts_.reset();
  }
  overlay_cells_ = std::make_unique<relational::Relation>(
      "OC", OverlayCellSchema(), s_.pool(), /*charge_create=*/true);
  for (const OverlayCellRow& row : cells) {
    ATIS_RETURN_NOT_OK(overlay_cells_->Insert(ToTuple(row)).status());
  }
  overlay_shortcuts_ = std::make_unique<relational::Relation>(
      "OS", OverlayShortcutSchema(), s_.pool(), /*charge_create=*/true);
  for (const OverlayShortcutRow& row : links) {
    ATIS_RETURN_NOT_OK(overlay_shortcuts_->Insert(ToTuple(row)).status());
  }
  return Status::OK();
}

Result<std::pair<std::vector<RelationalGraphStore::OverlayCellRow>,
                 std::vector<RelationalGraphStore::OverlayShortcutRow>>>
RelationalGraphStore::LoadOverlayTopology() const {
  if (overlay_cells_ == nullptr || overlay_shortcuts_ == nullptr) {
    return Status::FailedPrecondition("no overlay topology stored");
  }
  std::vector<OverlayCellRow> cells;
  cells.reserve(overlay_cells_->num_tuples());
  relational::Relation::Cursor c = overlay_cells_->Scan();
  for (; c.Valid(); c.Next()) {
    cells.push_back(OverlayCellFromTuple(c.tuple()));
  }
  ATIS_RETURN_NOT_OK(c.status());
  std::vector<OverlayShortcutRow> links;
  links.reserve(overlay_shortcuts_->num_tuples());
  relational::Relation::Cursor sc = overlay_shortcuts_->Scan();
  for (; sc.Valid(); sc.Next()) {
    links.push_back(OverlayShortcutFromTuple(sc.tuple()));
  }
  // A scan ended by a storage fault must not yield a partial topology.
  ATIS_RETURN_NOT_OK(sc.status());
  return std::make_pair(std::move(cells), std::move(links));
}

Status RelationalGraphStore::ResetSearchState() {
  return relational::Replace(
             &r_, /*pred=*/{},
             [](Tuple* t) {
               (*t)[kNStatus] = static_cast<int64_t>(NodeStatus::kNull);
               (*t)[kNPred] = static_cast<int64_t>(kInvalidNode);
               (*t)[kNCost] = std::numeric_limits<double>::infinity();
             })
      .status();
}

Tuple RelationalGraphStore::ToTuple(const NodeRow& row) {
  return Tuple{static_cast<int64_t>(row.id),
               FixedPoint(row.x),
               FixedPoint(row.y),
               static_cast<int64_t>(row.status),
               static_cast<int64_t>(row.pred),
               row.path_cost};
}

RelationalGraphStore::NodeRow RelationalGraphStore::NodeFromTuple(
    const Tuple& t) {
  NodeRow row;
  row.id = static_cast<NodeId>(relational::AsInt(t[kNId]));
  row.x = static_cast<double>(relational::AsInt(t[kNX])) / kCoordScale;
  row.y = static_cast<double>(relational::AsInt(t[kNY])) / kCoordScale;
  row.status = static_cast<NodeStatus>(relational::AsInt(t[kNStatus]));
  row.pred = static_cast<NodeId>(relational::AsInt(t[kNPred]));
  row.path_cost = relational::AsDouble(t[kNCost]);
  return row;
}

Tuple RelationalGraphStore::ToTuple(const EdgeRow& row) {
  return Tuple{static_cast<int64_t>(row.begin),
               static_cast<int64_t>(row.end), row.cost};
}

RelationalGraphStore::EdgeRow RelationalGraphStore::EdgeFromTuple(
    const Tuple& t) {
  EdgeRow row;
  row.begin = static_cast<NodeId>(relational::AsInt(t[kEBegin]));
  row.end = static_cast<NodeId>(relational::AsInt(t[kEEnd]));
  row.cost = relational::AsDouble(t[kECost]);
  return row;
}

Tuple RelationalGraphStore::ToTuple(const LandmarkDistRow& row) {
  return Tuple{static_cast<int64_t>(row.ord),
               static_cast<int64_t>(row.landmark),
               static_cast<int64_t>(row.node), row.dist_from, row.dist_to};
}

RelationalGraphStore::LandmarkDistRow
RelationalGraphStore::LandmarkDistFromTuple(const Tuple& t) {
  LandmarkDistRow row;
  row.ord = static_cast<int32_t>(relational::AsInt(t[0]));
  row.landmark = static_cast<NodeId>(relational::AsInt(t[1]));
  row.node = static_cast<NodeId>(relational::AsInt(t[2]));
  row.dist_from = relational::AsDouble(t[3]);
  row.dist_to = relational::AsDouble(t[4]);
  return row;
}

Tuple RelationalGraphStore::ToTuple(const OverlayCellRow& row) {
  return Tuple{static_cast<int64_t>(row.node),
               static_cast<int64_t>(row.cell),
               static_cast<int64_t>(row.is_boundary ? 1 : 0)};
}

RelationalGraphStore::OverlayCellRow
RelationalGraphStore::OverlayCellFromTuple(const Tuple& t) {
  OverlayCellRow row;
  row.node = static_cast<NodeId>(relational::AsInt(t[0]));
  row.cell = static_cast<int32_t>(relational::AsInt(t[1]));
  row.is_boundary = relational::AsInt(t[2]) != 0;
  return row;
}

Tuple RelationalGraphStore::ToTuple(const OverlayShortcutRow& row) {
  return Tuple{static_cast<int64_t>(row.cell),
               static_cast<int64_t>(row.from),
               static_cast<int64_t>(row.to)};
}

RelationalGraphStore::OverlayShortcutRow
RelationalGraphStore::OverlayShortcutFromTuple(const Tuple& t) {
  OverlayShortcutRow row;
  row.cell = static_cast<int32_t>(relational::AsInt(t[0]));
  row.from = static_cast<NodeId>(relational::AsInt(t[1]));
  row.to = static_cast<NodeId>(relational::AsInt(t[2]));
  return row;
}

}  // namespace atis::graph
