#include "graph/continent_generator.h"

#include <cmath>
#include <cstdlib>

#include "graph/graph_io.h"
#include "graph/relational_graph.h"
#include "graph/spatial_layout.h"
#include "util/random.h"

namespace atis::graph {

namespace {

/// Street tiers, fastest first. Faster tiers divide the distance cost by
/// a larger speed, so routes prefer freeways for long hauls — the shape
/// ATIS route queries exercise.
enum class Tier { kFreeway = 0, kArterial = 1, kLocal = 2 };

constexpr double kTierSpeed[] = {4.0, 2.0, 1.0};

/// Slot pitch between city origins, in units of the city lattice side.
/// The 0.6 gap keeps clusters visually and Hilbert-key separated, which
/// is what lets the partitioner cut between cities instead of through
/// them.
constexpr double kSlotFactor = 1.6;

/// Stateless per-(city, row, col, salt) uniform double in [0, 1). Every
/// emit pass recomputes the same stream, so node positions and edge
/// decisions never need to be stored.
double HashUniform(uint64_t seed, uint64_t city, uint64_t a, uint64_t b,
                   uint64_t salt) {
  uint64_t h = seed;
  h = SplitMix64(h ^ (city * 0x9e3779b97f4a7c15ULL)).Next();
  h = SplitMix64(h ^ (a * 0xbf58476d1ce4e5b9ULL)).Next();
  h = SplitMix64(h ^ (b * 0x94d049bb133111ebULL)).Next();
  h = SplitMix64(h ^ salt).Next();
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ContinentGenerator::ContinentGenerator(const ContinentOptions& options)
    : options_(options) {
  grid_cols_ = options_.num_cities > 0
                   ? static_cast<int>(std::ceil(
                         std::sqrt(static_cast<double>(options_.num_cities))))
                   : 0;
  num_nodes_ = static_cast<uint64_t>(options_.num_cities) *
               static_cast<uint64_t>(options_.city_k) *
               static_cast<uint64_t>(options_.city_k);
}

double ContinentGenerator::city_slot_span() const {
  return static_cast<double>(options_.city_k) * kSlotFactor;
}

Result<ContinentGenerator> ContinentGenerator::Create(
    const ContinentOptions& options) {
  if (options.num_cities < 0) {
    return Status::InvalidArgument("num_cities must be >= 0");
  }
  if (options.city_k < 1) {
    return Status::InvalidArgument("city_k must be >= 1");
  }
  if (options.freeway_weight < 0.0 || options.arterial_weight < 0.0 ||
      options.local_weight < 0.0) {
    return Status::InvalidArgument("tier weights must be non-negative");
  }
  const double weight_sum = options.freeway_weight + options.arterial_weight +
                            options.local_weight;
  if (!(weight_sum > 0.0)) {
    return Status::InvalidArgument("tier weights must sum to a positive value");
  }
  if (options.jitter < 0.0) {
    return Status::InvalidArgument("jitter must be >= 0");
  }
  ContinentGenerator gen(options);
  // The relational store quantises coordinates to int16 fixed point; a
  // layout wider than that budget would be rejected at load time, so
  // reject it here where the fix (fewer/smaller cities) is obvious.
  const double max_coord =
      static_cast<double>(gen.grid_cols_) * gen.city_slot_span() +
      options.jitter + 1.0;
  if (max_coord * RelationalGraphStore::kCoordScale > 32767.0) {
    return Status::InvalidArgument(
        "continent extent exceeds the int16 fixed-point coordinate budget; "
        "reduce num_cities or city_k");
  }
  return gen;
}

Status ContinentGenerator::EmitNodes(
    const std::function<void(NodeId, double, double)>& cb) const {
  const int k = options_.city_k;
  const double slot = city_slot_span();
  NodeId id = 0;
  for (int city = 0; city < options_.num_cities; ++city) {
    const int cr = city / grid_cols_;
    const int cc = city % grid_cols_;
    const double ox = static_cast<double>(cc) * slot;
    const double oy = static_cast<double>(cr) * slot;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        const double jx = (2.0 * HashUniform(options_.seed, city, i, j, 1) -
                           1.0) * options_.jitter;
        const double jy = (2.0 * HashUniform(options_.seed, city, i, j, 2) -
                           1.0) * options_.jitter;
        cb(id++, ox + j + jx, oy + i + jy);
      }
    }
  }
  return Status::OK();
}

Status ContinentGenerator::EmitEdges(
    const std::function<void(NodeId, NodeId, double)>& cb) const {
  const int k = options_.city_k;
  const double slot = city_slot_span();
  const double weight_sum = options_.freeway_weight +
                            options_.arterial_weight + options_.local_weight;
  const double p_freeway = options_.freeway_weight / weight_sum;
  const double p_arterial = options_.arterial_weight / weight_sum;

  // Tier of a city street line (row or column): one stateless draw per
  // line. axis_salt distinguishes row lines from column lines.
  auto line_tier = [&](int city, int line, uint64_t axis_salt) {
    const double u = HashUniform(options_.seed, static_cast<uint64_t>(city),
                                 static_cast<uint64_t>(line), 0, axis_salt);
    if (u < p_freeway) return Tier::kFreeway;
    if (u < p_freeway + p_arterial) return Tier::kArterial;
    return Tier::kLocal;
  };

  auto pos = [&](int city, int i, int j, double* x, double* y) {
    const int cr = city / grid_cols_;
    const int cc = city % grid_cols_;
    *x = static_cast<double>(cc) * slot + j +
         (2.0 * HashUniform(options_.seed, city, i, j, 1) - 1.0) *
             options_.jitter;
    *y = static_cast<double>(cr) * slot + i +
         (2.0 * HashUniform(options_.seed, city, i, j, 2) - 1.0) *
             options_.jitter;
  };

  auto node_id = [&](int city, int i, int j) {
    return static_cast<NodeId>(
        static_cast<uint64_t>(city) * static_cast<uint64_t>(k) *
            static_cast<uint64_t>(k) +
        static_cast<uint64_t>(i) * static_cast<uint64_t>(k) +
        static_cast<uint64_t>(j));
  };

  // Emits a two-way street between lattice points of one city.
  auto emit_street = [&](int city, int i1, int j1, int i2, int j2,
                         Tier tier) {
    double x1;
    double y1;
    double x2;
    double y2;
    pos(city, i1, j1, &x1, &y1);
    pos(city, i2, j2, &x2, &y2);
    const double cost = std::hypot(x2 - x1, y2 - y1) /
                        kTierSpeed[static_cast<int>(tier)];
    const NodeId u = node_id(city, i1, j1);
    const NodeId v = node_id(city, i2, j2);
    cb(u, v, cost);
    cb(v, u, cost);
  };

  for (int city = 0; city < options_.num_cities; ++city) {
    // Spanning comb (always present, keeps the city connected): every
    // vertical segment, plus row 0's horizontal spine.
    for (int i = 1; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        emit_street(city, i - 1, j, i, j, line_tier(city, j, 12));
      }
    }
    for (int j = 1; j < k; ++j) {
      emit_street(city, 0, j - 1, 0, j, line_tier(city, 0, 13));
    }
    // Remaining horizontal segments: tier of the row decides. Freeway and
    // arterial rows are fully built; local rows keep each segment with
    // probability local_fill.
    for (int i = 1; i < k; ++i) {
      const Tier row_tier = line_tier(city, i, 13);
      for (int j = 1; j < k; ++j) {
        if (row_tier == Tier::kLocal &&
            HashUniform(options_.seed, city, i, j, 3) >= options_.local_fill) {
          continue;
        }
        emit_street(city, i, j - 1, i, j, row_tier);
      }
    }
  }

  // Inter-city freeway corridors. The spanning set (west neighbour, or
  // north neighbour in column 0) keeps the continent connected; extra
  // vertical corridors appear with a freeway-weight-scaled probability.
  const double p_extra =
      std::min(1.0, 4.0 * options_.freeway_weight / weight_sum);
  auto emit_corridor = [&](int city_a, int ia, int ja, int city_b, int ib,
                           int jb) {
    double xa;
    double ya;
    double xb;
    double yb;
    pos(city_a, ia, ja, &xa, &ya);
    pos(city_b, ib, jb, &xb, &yb);
    const double cost = std::hypot(xb - xa, yb - ya) /
                        kTierSpeed[static_cast<int>(Tier::kFreeway)];
    const NodeId u = node_id(city_a, ia, ja);
    const NodeId v = node_id(city_b, ib, jb);
    cb(u, v, cost);
    cb(v, u, cost);
  };
  const int mid = k / 2;
  for (int city = 0; city < options_.num_cities; ++city) {
    const int cr = city / grid_cols_;
    const int cc = city % grid_cols_;
    // Spanning corridors.
    if (cc > 0) {
      // West gateway of this city to the east gateway of the left city.
      emit_corridor(city, mid, 0, city - 1, mid, k - 1);
    } else if (cr > 0) {
      emit_corridor(city, 0, mid, city - grid_cols_, k - 1, mid);
    }
    // Extra vertical corridor to the city above, when both exist.
    if (cr > 0 && cc > 0 &&
        HashUniform(options_.seed, city, 0, 0, 4) < p_extra) {
      emit_corridor(city, 0, mid, city - grid_cols_, k - 1, mid);
    }
  }
  return Status::OK();
}

uint64_t ContinentGenerator::CountEdges() const {
  uint64_t count = 0;
  (void)EmitEdges([&count](NodeId, NodeId, double) { ++count; });
  return count;
}

Status ContinentGenerator::WriteTo(const std::string& path) const {
  const uint64_t num_edges = CountEdges();
  ATIS_ASSIGN_OR_RETURN(
      StreamingGraphWriter writer,
      StreamingGraphWriter::Create(path, StoreLayout::kHilbert, num_nodes_,
                                   num_edges));
  Status status = Status::OK();
  ATIS_RETURN_NOT_OK(EmitNodes([&](NodeId, double x, double y) {
    if (status.ok()) status = writer.AddNode(x, y);
  }));
  ATIS_RETURN_NOT_OK(status);
  ATIS_RETURN_NOT_OK(EmitEdges([&](NodeId u, NodeId v, double cost) {
    if (status.ok()) status = writer.AddEdge(u, v, cost);
  }));
  ATIS_RETURN_NOT_OK(status);
  return writer.Finish();
}

Result<Graph> ContinentGenerator::Materialize() const {
  Graph g;
  ATIS_RETURN_NOT_OK(EmitNodes(
      [&g](NodeId, double x, double y) { g.AddNode(x, y); }));
  Status status = Status::OK();
  ATIS_RETURN_NOT_OK(EmitEdges([&](NodeId u, NodeId v, double cost) {
    if (status.ok()) status = g.AddEdge(u, v, cost);
  }));
  ATIS_RETURN_NOT_OK(status);
  return g;
}

}  // namespace atis::graph
