// Spatial hash grid for nearest-neighbor and radius queries over planar
// points.
//
// Map generation repeatedly asks "which node is closest to (x, y)?" —
// landmark placement, gateway selection, cluster stitching. A linear scan
// is O(n) per query and O(n^2) over a generation pass, which is the
// difference between seconds and hours at continent scale (~1M nodes).
// This grid buckets points into square cells of a caller-chosen size; a
// nearest query expands outward ring by ring and stops as soon as no
// unexamined ring can beat the best candidate, so uniform-ish point sets
// answer in O(1) expected time.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace atis::graph {

class SpatialHashGrid {
 public:
  /// `cell_size` must be > 0; pick roughly the typical point spacing so
  /// cells hold O(1) points each.
  explicit SpatialHashGrid(double cell_size) : cell_size_(cell_size) {}

  void Reserve(size_t n) { cells_.reserve(n); }

  void Insert(NodeId id, double x, double y) {
    cells_[KeyFor(x, y)].push_back(Entry{id, x, y});
    ++size_;
  }

  size_t size() const { return size_; }

  /// The inserted point nearest to (x, y); ties break toward the smaller
  /// node id (deterministic). kInvalidNode when the grid is empty.
  NodeId Nearest(double x, double y) const;

  /// Calls `fn(id, px, py)` for every inserted point within `radius` of
  /// (x, y), in unspecified order.
  template <typename Fn>
  void ForEachInRadius(double x, double y, double radius, Fn&& fn) const {
    if (size_ == 0 || radius < 0.0) return;
    const int64_t cx_lo = CellCoord(x - radius);
    const int64_t cx_hi = CellCoord(x + radius);
    const int64_t cy_lo = CellCoord(y - radius);
    const int64_t cy_hi = CellCoord(y + radius);
    const double r2 = radius * radius;
    for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
        const auto it = cells_.find(Pack(cx, cy));
        if (it == cells_.end()) continue;
        for (const Entry& e : it->second) {
          const double dx = e.x - x;
          const double dy = e.y - y;
          if (dx * dx + dy * dy <= r2) fn(e.id, e.x, e.y);
        }
      }
    }
  }

 private:
  struct Entry {
    NodeId id;
    double x;
    double y;
  };

  int64_t CellCoord(double v) const {
    return static_cast<int64_t>(std::floor(v / cell_size_));
  }
  static uint64_t Pack(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }
  uint64_t KeyFor(double x, double y) const {
    return Pack(CellCoord(x), CellCoord(y));
  }

  double cell_size_;
  size_t size_ = 0;
  std::unordered_map<uint64_t, std::vector<Entry>> cells_;
};

}  // namespace atis::graph
