// Synthetic "Minneapolis-like" road map (Section 5.2 substitution).
//
// The paper's map was digitised from imagery and is not available, so this
// generator rebuilds a map with the same published statistics and the
// topological features the paper's analysis depends on:
//   * 1089 nodes (a 33x33 lattice with perturbed positions) and
//     approximately 3300 directed edges;
//   * a dense downtown core whose street grid is rotated against the
//     outer grid (the reason the A-to-B diagonal backtracks more than
//     C-to-D in Table 8);
//   * lakes interrupting the lower-left corner and a river flowing from
//     the north edge to the southeast in the upper-right quadrant, crossed
//     only at bridges;
//   * one-way freeway segments, making the graph directed;
//   * edge costs equal to the Euclidean distance between endpoints.
//
// The generator also exports the seven landmark nodes (A..G) used by the
// paper's four benchmark queries: two long diagonals (A->B against the
// downtown slope, C->D along it) and two short trips (G->D, E->F).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace atis::graph {

struct RoadMapOptions {
  int base_k = 33;                     ///< lattice side; 33*33 = 1089 nodes
  uint64_t seed = 1993;
  size_t target_directed_edges = 3300;
  double perturbation = 0.15;          ///< jitter of street intersections
  double downtown_rotation_deg = 28.0; ///< core grid rotation
  double downtown_scale = 0.72;        ///< core densification factor
};

struct RoadMap {
  Graph graph;
  // Landmarks (see Table 8): A->B and C->D are long diagonal trips,
  // G->D and E->F short trips.
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  NodeId c = kInvalidNode;
  NodeId d = kInvalidNode;
  NodeId e = kInvalidNode;
  NodeId f = kInvalidNode;
  NodeId g = kInvalidNode;
};

/// Generates the map. Guarantees: exactly base_k^2 nodes; every non-isolated
/// node is strongly connected to every other (one-way conversions never
/// touch spanning-tree edges); all landmark nodes lie in the connected core.
Result<RoadMap> GenerateMinneapolisLike(const RoadMapOptions& options = {});

}  // namespace atis::graph
