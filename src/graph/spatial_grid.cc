#include "graph/spatial_grid.h"

#include <cmath>
#include <limits>

namespace atis::graph {

NodeId SpatialHashGrid::Nearest(double x, double y) const {
  if (size_ == 0) return kInvalidNode;
  const int64_t cx0 = CellCoord(x);
  const int64_t cy0 = CellCoord(y);
  NodeId best = kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  // Expand square rings outward. Once a candidate is found, any point in a
  // ring at Chebyshev cell distance r is at least (r - 1) * cell_size_
  // away, so the search stops when that lower bound exceeds the best.
  for (int64_t r = 0;; ++r) {
    if (best != kInvalidNode) {
      const double lower = static_cast<double>(r - 1) * cell_size_;
      if (lower > 0.0 && lower * lower > best_d2) break;
    }
    bool any_cell = false;
    auto visit = [&](int64_t cx, int64_t cy) {
      const auto it = cells_.find(Pack(cx, cy));
      if (it == cells_.end()) return;
      any_cell = true;
      for (const Entry& e : it->second) {
        const double dx = e.x - x;
        const double dy = e.y - y;
        const double d2 = dx * dx + dy * dy;
        if (d2 < best_d2 || (d2 == best_d2 && e.id < best)) {
          best = e.id;
          best_d2 = d2;
        }
      }
    };
    if (r == 0) {
      visit(cx0, cy0);
    } else {
      for (int64_t i = -r; i <= r; ++i) {
        visit(cx0 + i, cy0 - r);
        visit(cx0 + i, cy0 + r);
      }
      for (int64_t i = -r + 1; i <= r - 1; ++i) {
        visit(cx0 - r, cy0 + i);
        visit(cx0 + r, cy0 + i);
      }
    }
    // Safety net for very sparse grids: if the ring radius has grown past
    // the whole populated extent without touching a cell, fall back to
    // scanning everything once (terminates regardless of geometry).
    if (!any_cell && best == kInvalidNode &&
        static_cast<size_t>(r) > cells_.size() + 2) {
      for (const auto& [key, entries] : cells_) {
        (void)key;
        for (const Entry& e : entries) {
          const double dx = e.x - x;
          const double dy = e.y - y;
          const double d2 = dx * dx + dy * dy;
          if (d2 < best_d2 || (d2 == best_d2 && e.id < best)) {
            best = e.id;
            best_d2 = d2;
          }
        }
      }
      break;
    }
  }
  return best;
}

}  // namespace atis::graph
