#include "graph/partitioned_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>

#include "graph/graph_io.h"
#include "graph/spatial_layout.h"
#include "storage/spill_sort.h"

namespace atis::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// External-sort record for nodes: Hilbert key, original id, coordinates.
struct BuildNodeRecord {
  uint64_t key;
  NodeId id;
  double x;
  double y;
};

/// Rank-ordered node spill record (re-read per partition range, and
/// randomly for ghost coordinates).
struct RankedNodeRecord {
  NodeId id;
  double x;
  double y;
};

/// External-sort record for edges, keyed by the begin node's rank.
struct BuildEdgeRecord {
  uint64_t key;
  NodeId u;
  NodeId v;
  double cost;
};

/// Rank-ordered edge spill record; partition ranges are contiguous.
struct SortedEdgeRecord {
  NodeId u;
  NodeId v;
  double cost;
};

/// The store keeps edge costs as 4-byte floats; every consumer of a cost
/// that must agree with a store-served search has to round the same way.
double StoreCost(double cost) {
  return static_cast<double>(static_cast<float>(cost));
}

/// Binary min-heap entry for the in-memory Dijkstras.
struct HeapEntry {
  double dist;
  uint32_t node;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>;

}  // namespace

int PartitionedGraphStore::PartitionOf(NodeId global) const {
  if (global < 0 || static_cast<size_t>(global) >= global_map_.size()) {
    return -1;
  }
  const uint32_t p = packed(global);
  if (p == kUnmapped) return -1;
  return static_cast<int>(p >> 16);
}

Result<std::unique_ptr<PartitionedGraphStore>> PartitionedGraphStore::Build(
    const std::string& path, storage::BufferPool* pool,
    const PartitionedStoreOptions& options) {
  if (options.max_partition_nodes < 2 ||
      options.max_partition_nodes > 32767) {
    return Status::InvalidArgument(
        "max_partition_nodes must be in [2, 32767]");
  }
  auto store = std::unique_ptr<PartitionedGraphStore>(
      new PartitionedGraphStore());
  storage::DiskManager* disk = pool->disk();

  // Pass 1: node-section scan for the global bounding box.
  ATIS_ASSIGN_OR_RETURN(StreamingGraphReader pass1,
                        StreamingGraphReader::Open(path));
  const uint64_t n64 = pass1.num_nodes();
  if (n64 > static_cast<uint64_t>(std::numeric_limits<NodeId>::max())) {
    return Status::InvalidArgument("node count exceeds NodeId range");
  }
  const size_t n = static_cast<size_t>(n64);
  store->num_nodes_ = n64;
  double min_x = kInf;
  double min_y = kInf;
  double max_x = -kInf;
  double max_y = -kInf;
  for (size_t u = 0; u < n; ++u) {
    StreamingGraphReader::NodeRecord rec;
    ATIS_RETURN_NOT_OK(pass1.NextNode(&rec));
    min_x = std::min(min_x, rec.x);
    min_y = std::min(min_y, rec.y);
    max_x = std::max(max_x, rec.x);
    max_y = std::max(max_y, rec.y);
  }
  if (n == 0) {
    return store;  // empty map: zero partitions, every query NotFound
  }
  const HilbertKeyMapper mapper =
      HilbertKeyMapper::FromBounds(min_x, min_y, max_x, max_y);

  // Pass 2: external-sort node tuples by (Hilbert key, id), then stream
  // the sorted order out into rank structures and the node spill. The
  // same reader handle continues into the edge section afterwards.
  ATIS_ASSIGN_OR_RETURN(StreamingGraphReader reader,
                        StreamingGraphReader::Open(path));
  storage::SpillSorter<BuildNodeRecord> node_sorter(
      disk, options.sort_budget_bytes);
  for (size_t u = 0; u < n; ++u) {
    StreamingGraphReader::NodeRecord rec;
    ATIS_RETURN_NOT_OK(reader.NextNode(&rec));
    ATIS_RETURN_NOT_OK(node_sorter.Add(BuildNodeRecord{
        mapper.Key(rec.x, rec.y), static_cast<NodeId>(u), rec.x, rec.y}));
  }
  ATIS_RETURN_NOT_OK(node_sorter.Finish());

  std::vector<NodeId> rank_of(n, kInvalidNode);
  std::vector<uint64_t> keys(n);  // rank-ordered; freed after the cuts
  storage::SpillFile<RankedNodeRecord> node_spill(disk);
  {
    BuildNodeRecord rec{};
    NodeId rank = 0;
    while (true) {
      ATIS_ASSIGN_OR_RETURN(bool more, node_sorter.Next(&rec));
      if (!more) break;
      rank_of[static_cast<size_t>(rec.id)] = rank;
      keys[static_cast<size_t>(rank)] = rec.key;
      ATIS_RETURN_NOT_OK(
          node_spill.Append(RankedNodeRecord{rec.id, rec.x, rec.y}));
      ++rank;
    }
    ATIS_RETURN_NOT_OK(node_spill.Finish());
  }

  // Partition cuts: equal-count positions snapped to the largest key gap
  // within the window. The 0.8 slack keeps a snapped cut from pushing a
  // partition past max_partition_nodes.
  const size_t effective_max =
      std::max<size_t>(1, options.max_partition_nodes * 8 / 10);
  const size_t num_parts = (n + effective_max - 1) / effective_max;
  if (num_parts > 65535) {
    return Status::InvalidArgument("too many partitions (max 65535)");
  }
  std::vector<size_t> cut;
  cut.reserve(num_parts + 1);
  cut.push_back(0);
  const size_t part_span = n / num_parts;
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(options.gap_window *
                             static_cast<double>(part_span)));
  for (size_t p = 1; p < num_parts; ++p) {
    const size_t target = p * n / num_parts;
    const size_t lo = std::max(cut.back() + 1,
                               target > window ? target - window : 1);
    const size_t hi = std::min(n - 1, target + window);
    size_t best = std::max(lo, std::min(target, hi));
    uint64_t best_gap = 0;
    for (size_t r = lo; r <= hi && r < n; ++r) {
      const uint64_t gap = keys[r] - keys[r - 1];
      if (gap > best_gap) {
        best_gap = gap;
        best = r;
      }
    }
    cut.push_back(best);
  }
  cut.push_back(n);
  keys.clear();
  keys.shrink_to_fit();

  const size_t num_partitions = cut.size() - 1;
  store->global_map_.assign(n, kUnmapped);
  {
    // rank -> partition via the cuts; then id -> packed(partition, local).
    std::vector<uint16_t> part_of_rank(n);
    for (size_t p = 0; p < num_partitions; ++p) {
      for (size_t r = cut[p]; r < cut[p + 1]; ++r) {
        part_of_rank[r] = static_cast<uint16_t>(p);
      }
    }
    for (size_t id = 0; id < n; ++id) {
      const size_t r = static_cast<size_t>(rank_of[id]);
      const uint32_t p = part_of_rank[r];
      const uint32_t local = static_cast<uint32_t>(r - cut[p]);
      store->global_map_[id] = (p << 16) | local;
    }
  }

  // Edge pass: sort by begin rank, spill in sorted order, and record the
  // contiguous per-partition edge ranges plus every cross edge.
  ATIS_RETURN_NOT_OK(reader.BeginEdges());
  store->num_edges_ = reader.num_edges();
  storage::SpillSorter<BuildEdgeRecord> edge_sorter(
      disk, options.sort_budget_bytes);
  for (uint64_t i = 0; i < store->num_edges_; ++i) {
    StreamingGraphReader::EdgeRecord e;
    ATIS_RETURN_NOT_OK(reader.NextEdge(&e));
    if (e.u < 0 || static_cast<size_t>(e.u) >= n || e.v < 0 ||
        static_cast<size_t>(e.v) >= n) {
      return Status::Corruption("edge endpoint out of range in " + path);
    }
    ATIS_RETURN_NOT_OK(edge_sorter.Add(BuildEdgeRecord{
        static_cast<uint64_t>(rank_of[static_cast<size_t>(e.u)]), e.u, e.v,
        e.cost}));
  }
  ATIS_RETURN_NOT_OK(edge_sorter.Finish());

  storage::SpillFile<SortedEdgeRecord> edge_spill(disk);
  std::vector<size_t> edge_begin(num_partitions + 1, 0);
  struct CrossEdge {
    NodeId u;
    NodeId v;
    double cost;
  };
  std::vector<CrossEdge> cross_edges;
  std::vector<std::vector<uint32_t>> cross_of(num_partitions);
  {
    BuildEdgeRecord rec{};
    size_t index = 0;
    size_t current_part = 0;
    while (true) {
      ATIS_ASSIGN_OR_RETURN(bool more, edge_sorter.Next(&rec));
      if (!more) break;
      const uint32_t pu = store->global_map_[static_cast<size_t>(rec.u)];
      const uint32_t pv = store->global_map_[static_cast<size_t>(rec.v)];
      const size_t part_u = pu >> 16;
      while (current_part < part_u) edge_begin[++current_part] = index;
      if ((pv >> 16) != part_u) {
        cross_of[part_u].push_back(static_cast<uint32_t>(cross_edges.size()));
        cross_edges.push_back(CrossEdge{rec.u, rec.v, rec.cost});
      }
      ATIS_RETURN_NOT_OK(
          edge_spill.Append(SortedEdgeRecord{rec.u, rec.v, rec.cost}));
      ++index;
    }
    while (current_part < num_partitions) edge_begin[++current_part] = index;
    ATIS_RETURN_NOT_OK(edge_spill.Finish());
  }
  store->num_cross_edges_ = cross_edges.size();

  // Materialise the partitions one at a time. Ghost nodes (remote cross-
  // edge targets) are appended after the owned range so an edge leaving
  // the partition still has an in-store endpoint to point at.
  store->partitions_.resize(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    Partition& part = store->partitions_[p];
    part.num_owned = static_cast<uint32_t>(cut[p + 1] - cut[p]);
    Graph g;
    part.local_to_global.reserve(part.num_owned + cross_of[p].size());
    ATIS_RETURN_NOT_OK(node_spill.ReadRange(
        cut[p], cut[p + 1], [&](size_t, const RankedNodeRecord& rec) {
          g.AddNode(rec.x, rec.y);
          part.local_to_global.push_back(rec.id);
        }));
    std::unordered_map<NodeId, NodeId> ghost_local;
    ghost_local.reserve(cross_of[p].size());
    for (const uint32_t ci : cross_of[p]) {
      const NodeId v = cross_edges[static_cast<size_t>(ci)].v;
      if (ghost_local.count(v) != 0) continue;
      ATIS_ASSIGN_OR_RETURN(
          RankedNodeRecord rec,
          node_spill.Read(static_cast<size_t>(
              rank_of[static_cast<size_t>(v)])));
      const NodeId local = g.AddNode(rec.x, rec.y);
      ghost_local.emplace(v, local);
      part.local_to_global.push_back(v);
    }
    if (g.num_nodes() > 32767) {
      return Status::Internal(
          "partition plus ghosts exceeds the 32767-node store cap");
    }
    Status add_status = Status::OK();
    ATIS_RETURN_NOT_OK(edge_spill.ReadRange(
        edge_begin[p], edge_begin[p + 1],
        [&](size_t, const SortedEdgeRecord& rec) {
          if (!add_status.ok()) return;
          const uint32_t pu = store->global_map_[static_cast<size_t>(rec.u)];
          const uint32_t pv = store->global_map_[static_cast<size_t>(rec.v)];
          const NodeId lu = static_cast<NodeId>(pu & 0xFFFF);
          const NodeId lv = (pv >> 16) == p
                                ? static_cast<NodeId>(pv & 0xFFFF)
                                : ghost_local.at(rec.v);
          add_status = g.AddEdge(lu, lv, rec.cost);
        }));
    ATIS_RETURN_NOT_OK(add_status);
    part.store = std::make_unique<RelationalGraphStore>(pool);
    RelationalGraphStore::LoadOptions load_options;
    load_options.layout = StoreLayout::kHilbert;
    ATIS_RETURN_NOT_OK(part.store->Load(g, load_options));
  }
  node_spill.Clear();

  // Boundary sets: exits = cross-edge sources of p, entries = cross-edge
  // targets owned by p.
  for (const CrossEdge& ce : cross_edges) {
    const uint32_t pu = store->global_map_[static_cast<size_t>(ce.u)];
    const uint32_t pv = store->global_map_[static_cast<size_t>(ce.v)];
    store->partitions_[pu >> 16].exits.push_back(ce.u);
    store->partitions_[pv >> 16].entries.push_back(ce.v);
  }
  for (Partition& part : store->partitions_) {
    auto dedup = [](std::vector<NodeId>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedup(&part.entries);
    dedup(&part.exits);
  }

  // Customization: per partition, within-partition shortest costs from
  // every entry to every exit, over an in-memory CSR built from the edge
  // spill with store-rounded costs. Partitions are independent, so the
  // loop fans out across threads (the spill reads go through the
  // thread-safe DiskManager).
  {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned num_threads = static_cast<unsigned>(std::min<size_t>(
        options.customize_threads == 0 ? hw : options.customize_threads,
        num_partitions));
    std::atomic<size_t> next{0};
    std::vector<Status> thread_status(num_threads, Status::OK());
    auto customize_one = [&](size_t p) -> Status {
      Partition& part = store->partitions_[p];
      if (part.entries.empty() || part.exits.empty()) return Status::OK();
      const size_t owned = part.num_owned;
      // Intra-partition CSR over owned local ids.
      std::vector<std::vector<std::pair<uint32_t, double>>> adj(owned);
      ATIS_RETURN_NOT_OK(edge_spill.ReadRange(
          edge_begin[p], edge_begin[p + 1],
          [&](size_t, const SortedEdgeRecord& rec) {
            const uint32_t pv =
                store->global_map_[static_cast<size_t>(rec.v)];
            if ((pv >> 16) != p) return;  // leaves the partition
            const uint32_t pu =
                store->global_map_[static_cast<size_t>(rec.u)];
            adj[pu & 0xFFFF].emplace_back(pv & 0xFFFF,
                                          StoreCost(rec.cost));
          }));
      part.entry_exit_cost.assign(part.entries.size() * part.exits.size(),
                                  kInf);
      std::vector<double> dist(owned);
      for (size_t ei = 0; ei < part.entries.size(); ++ei) {
        const uint32_t source =
            store->global_map_[static_cast<size_t>(part.entries[ei])] &
            0xFFFF;
        std::fill(dist.begin(), dist.end(), kInf);
        dist[source] = 0.0;
        MinHeap heap;
        heap.push(HeapEntry{0.0, source});
        while (!heap.empty()) {
          const HeapEntry top = heap.top();
          heap.pop();
          if (top.dist > dist[top.node]) continue;
          for (const auto& [to, cost] : adj[top.node]) {
            const double nd = top.dist + cost;
            if (nd < dist[to]) {
              dist[to] = nd;
              heap.push(HeapEntry{nd, to});
            }
          }
        }
        for (size_t xi = 0; xi < part.exits.size(); ++xi) {
          const uint32_t exit_local =
              store->global_map_[static_cast<size_t>(part.exits[xi])] &
              0xFFFF;
          part.entry_exit_cost[ei * part.exits.size() + xi] =
              dist[exit_local];
        }
      }
      return Status::OK();
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t]() {
        while (true) {
          const size_t p = next.fetch_add(1, std::memory_order_relaxed);
          if (p >= num_partitions) break;
          Status s = customize_one(p);
          if (!s.ok() && thread_status[t].ok()) thread_status[t] = s;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    for (const Status& s : thread_status) ATIS_RETURN_NOT_OK(s);
  }
  edge_spill.Clear();

  // Overlay graph over the boundary nodes: customized entry->exit arcs
  // plus the cross edges themselves.
  {
    std::vector<NodeId> boundary;
    for (const Partition& part : store->partitions_) {
      boundary.insert(boundary.end(), part.entries.begin(),
                      part.entries.end());
      boundary.insert(boundary.end(), part.exits.begin(), part.exits.end());
    }
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    store->overlay_nodes_ = std::move(boundary);
    store->overlay_index_.assign(n, -1);
    for (size_t i = 0; i < store->overlay_nodes_.size(); ++i) {
      store->overlay_index_[static_cast<size_t>(store->overlay_nodes_[i])] =
          static_cast<int32_t>(i);
    }
    store->overlay_adj_.assign(store->overlay_nodes_.size(), {});
    for (const Partition& part : store->partitions_) {
      for (size_t ei = 0; ei < part.entries.size(); ++ei) {
        const int32_t from =
            store->overlay_index_[static_cast<size_t>(part.entries[ei])];
        for (size_t xi = 0; xi < part.exits.size(); ++xi) {
          if (part.entries[ei] == part.exits[xi]) continue;
          const double cost =
              part.entry_exit_cost[ei * part.exits.size() + xi];
          if (!(cost < kInf)) continue;
          const int32_t to =
              store->overlay_index_[static_cast<size_t>(part.exits[xi])];
          store->overlay_adj_[static_cast<size_t>(from)].emplace_back(
              static_cast<uint32_t>(to), cost);
        }
      }
    }
    for (const CrossEdge& ce : cross_edges) {
      const int32_t from = store->overlay_index_[static_cast<size_t>(ce.u)];
      const int32_t to = store->overlay_index_[static_cast<size_t>(ce.v)];
      store->overlay_adj_[static_cast<size_t>(from)].emplace_back(
          static_cast<uint32_t>(to), StoreCost(ce.cost));
    }
  }
  return store;
}

Result<std::vector<RelationalGraphStore::EdgeRow>>
PartitionedGraphStore::FetchAdjacency(NodeId global) const {
  const int p = PartitionOf(global);
  if (p < 0) {
    return Status::NotFound("node " + std::to_string(global) +
                            " not in the partitioned store");
  }
  const NodeId local = static_cast<NodeId>(packed(global) & 0xFFFF);
  const Partition& part = partitions_[static_cast<size_t>(p)];
  ATIS_ASSIGN_OR_RETURN(std::vector<RelationalGraphStore::EdgeRow> rows,
                        part.store->FetchAdjacency(local));
  for (RelationalGraphStore::EdgeRow& row : rows) {
    row.begin = global;
    row.end = part.local_to_global[static_cast<size_t>(row.end)];
  }
  return rows;
}

Result<std::vector<double>> PartitionedGraphStore::RestrictedDijkstra(
    size_t p, const std::vector<std::pair<NodeId, double>>& seeds,
    uint64_t* settled) const {
  const Partition& part = partitions_[p];
  std::vector<double> dist(part.local_to_global.size(), kInf);
  MinHeap heap;
  for (const auto& [local, d] : seeds) {
    if (d < dist[static_cast<size_t>(local)]) {
      dist[static_cast<size_t>(local)] = d;
      heap.push(HeapEntry{d, static_cast<uint32_t>(local)});
    }
  }
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > dist[top.node]) continue;
    if (top.node >= part.num_owned) continue;  // ghost: outside p
    if (settled != nullptr) ++*settled;
    ATIS_ASSIGN_OR_RETURN(std::vector<RelationalGraphStore::EdgeRow> rows,
                          part.store->FetchAdjacency(
                              static_cast<NodeId>(top.node)));
    for (const RelationalGraphStore::EdgeRow& row : rows) {
      const size_t to = static_cast<size_t>(row.end);
      if (to >= part.num_owned) continue;  // edge leaves the partition
      const double nd = top.dist + row.cost;
      if (nd < dist[to]) {
        dist[to] = nd;
        heap.push(HeapEntry{nd, static_cast<uint32_t>(to)});
      }
    }
  }
  return dist;
}

Result<PartitionedGraphStore::RouteCost>
PartitionedGraphStore::StitchedDistance(NodeId source, NodeId destination,
                                        QueryStats* stats) const {
  const int ps = PartitionOf(source);
  const int pt = PartitionOf(destination);
  if (ps < 0 || pt < 0) {
    return Status::NotFound("query endpoint not in the partitioned store");
  }
  if (stats != nullptr) stats->cross_partition = (ps != pt);
  if (source == destination) return RouteCost{true, 0.0};
  const NodeId local_s = static_cast<NodeId>(packed(source) & 0xFFFF);
  const NodeId local_t = static_cast<NodeId>(packed(destination) & 0xFFFF);

  // Phase 1: restricted Dijkstra in the source partition.
  uint64_t settled1 = 0;
  ATIS_ASSIGN_OR_RETURN(
      std::vector<double> dist_s,
      RestrictedDijkstra(static_cast<size_t>(ps), {{local_s, 0.0}},
                         &settled1));
  if (stats != nullptr) stats->settled_source = settled1;
  double best = kInf;
  if (ps == pt) best = dist_s[static_cast<size_t>(local_t)];

  // Phase 2: Dijkstra over the in-memory boundary overlay, seeded with
  // the source partition's exit distances.
  const Partition& spart = partitions_[static_cast<size_t>(ps)];
  std::vector<double> dist_ov(overlay_nodes_.size(), kInf);
  MinHeap heap;
  for (const NodeId exit : spart.exits) {
    const double d =
        dist_s[static_cast<size_t>(packed(exit) & 0xFFFF)];
    if (!(d < kInf)) continue;
    const int32_t idx = overlay_index_[static_cast<size_t>(exit)];
    if (d < dist_ov[static_cast<size_t>(idx)]) {
      dist_ov[static_cast<size_t>(idx)] = d;
      heap.push(HeapEntry{d, static_cast<uint32_t>(idx)});
    }
  }
  uint64_t settled2 = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist > dist_ov[top.node]) continue;
    ++settled2;
    for (const auto& [to, cost] : overlay_adj_[top.node]) {
      const double nd = top.dist + cost;
      if (nd < dist_ov[to]) {
        dist_ov[to] = nd;
        heap.push(HeapEntry{nd, to});
      }
    }
  }
  if (stats != nullptr) stats->settled_overlay = settled2;

  // Phase 3: multi-source restricted Dijkstra in the target partition,
  // seeded with the overlay labels of its entry nodes.
  const Partition& tpart = partitions_[static_cast<size_t>(pt)];
  std::vector<std::pair<NodeId, double>> seeds;
  for (const NodeId entry : tpart.entries) {
    const int32_t idx = overlay_index_[static_cast<size_t>(entry)];
    const double d = dist_ov[static_cast<size_t>(idx)];
    if (!(d < kInf)) continue;
    seeds.emplace_back(static_cast<NodeId>(packed(entry) & 0xFFFF), d);
  }
  if (!seeds.empty()) {
    uint64_t settled3 = 0;
    ATIS_ASSIGN_OR_RETURN(
        std::vector<double> dist_t,
        RestrictedDijkstra(static_cast<size_t>(pt), seeds, &settled3));
    if (stats != nullptr) stats->settled_target = settled3;
    best = std::min(best, dist_t[static_cast<size_t>(local_t)]);
  }
  if (!(best < kInf)) return RouteCost{false, 0.0};
  return RouteCost{true, best};
}

Result<PartitionedGraphStore::RouteCost>
PartitionedGraphStore::GlobalDijkstra(NodeId source, NodeId destination,
                                      QueryStats* stats) const {
  if (PartitionOf(source) < 0 || PartitionOf(destination) < 0) {
    return Status::NotFound("query endpoint not in the partitioned store");
  }
  if (stats != nullptr) {
    stats->cross_partition =
        PartitionOf(source) != PartitionOf(destination);
  }
  std::unordered_map<NodeId, double> dist;
  dist.reserve(1024);
  MinHeap heap;
  dist.emplace(source, 0.0);
  heap.push(HeapEntry{0.0, static_cast<uint32_t>(source)});
  uint64_t settled = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const NodeId u = static_cast<NodeId>(top.node);
    const auto it = dist.find(u);
    if (it == dist.end() || top.dist > it->second) continue;
    ++settled;
    if (u == destination) {
      if (stats != nullptr) stats->settled_source = settled;
      return RouteCost{true, top.dist};
    }
    ATIS_ASSIGN_OR_RETURN(std::vector<RelationalGraphStore::EdgeRow> rows,
                          FetchAdjacency(u));
    for (const RelationalGraphStore::EdgeRow& row : rows) {
      const double nd = top.dist + row.cost;
      const auto [vit, inserted] = dist.emplace(row.end, nd);
      if (!inserted) {
        if (nd >= vit->second) continue;
        vit->second = nd;
      }
      heap.push(HeapEntry{nd, static_cast<uint32_t>(row.end)});
    }
  }
  if (stats != nullptr) stats->settled_source = settled;
  return RouteCost{false, 0.0};
}

}  // namespace atis::graph
