#include "graph/graph.h"

#include <cmath>
#include <string>

namespace atis::graph {

NodeId Graph::AddNode(double x, double y) {
  points_.push_back({x, y});
  adjacency_.emplace_back();
  return static_cast<NodeId>(points_.size() - 1);
}

Status Graph::AddEdge(NodeId u, NodeId v, double cost) {
  if (!HasNode(u) || !HasNode(v)) {
    return Status::InvalidArgument("edge references unknown node");
  }
  if (cost < 0.0) {
    return Status::InvalidArgument("negative edge cost");
  }
  adjacency_[static_cast<size_t>(u)].push_back({v, cost});
  ++num_edges_;
  return Status::OK();
}

Status Graph::AddUndirectedEdge(NodeId u, NodeId v, double cost) {
  ATIS_RETURN_NOT_OK(AddEdge(u, v, cost));
  return AddEdge(v, u, cost);
}

Result<double> Graph::EdgeCost(NodeId u, NodeId v) const {
  if (!HasNode(u) || !HasNode(v)) {
    return Status::InvalidArgument("unknown node");
  }
  for (const Edge& e : adjacency_[static_cast<size_t>(u)]) {
    if (e.to == v) return e.cost;
  }
  return Status::NotFound("no edge " + std::to_string(u) + " -> " +
                          std::to_string(v));
}

double Graph::EuclideanDistance(NodeId u, NodeId v) const {
  const Point& a = point(u);
  const Point& b = point(v);
  return std::hypot(a.x - b.x, a.y - b.y);
}

double Graph::ManhattanDistance(NodeId u, NodeId v) const {
  const Point& a = point(u);
  const Point& b = point(v);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Status Graph::ScaleEdgeCosts(double factor) {
  if (factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  for (auto& list : adjacency_) {
    for (Edge& e : list) e.cost *= factor;
  }
  return Status::OK();
}

Status Graph::SetEdgeCost(NodeId u, NodeId v, double cost) {
  if (!HasNode(u) || !HasNode(v)) {
    return Status::InvalidArgument("unknown node");
  }
  if (cost < 0.0) {
    return Status::InvalidArgument("negative edge cost");
  }
  for (Edge& e : adjacency_[static_cast<size_t>(u)]) {
    if (e.to == v) {
      e.cost = cost;
      return Status::OK();
    }
  }
  return Status::NotFound("no edge to update");
}

}  // namespace atis::graph
