#include "graph/svg_export.h"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace atis::graph {

Status WriteSvg(const Graph& g, const std::vector<NodeId>& route,
                std::ostream& out, const SvgOptions& options) {
  if (options.width_px <= 0 || options.height_px <= 0) {
    return Status::InvalidArgument("SVG canvas must be positive");
  }
  double min_x = 0.0;
  double max_x = 1.0;
  double min_y = 0.0;
  double max_y = 1.0;
  if (g.num_nodes() > 0) {
    min_x = max_x = g.point(0).x;
    min_y = max_y = g.point(0).y;
    for (NodeId u = 1; u < static_cast<NodeId>(g.num_nodes()); ++u) {
      min_x = std::min(min_x, g.point(u).x);
      max_x = std::max(max_x, g.point(u).x);
      min_y = std::min(min_y, g.point(u).y);
      max_y = std::max(max_y, g.point(u).y);
    }
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  const double inner_w = options.width_px - 2.0 * options.margin_px;
  const double inner_h = options.height_px - 2.0 * options.margin_px;
  auto px = [&](const Point& p) {
    return options.margin_px + (p.x - min_x) / span_x * inner_w;
  };
  auto py = [&](const Point& p) {
    // y grows upward in map space, downward in SVG space.
    return options.margin_px + (max_y - p.y) / span_y * inner_h;
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width_px << "\" height=\"" << options.height_px
      << "\" viewBox=\"0 0 " << options.width_px << " "
      << options.height_px << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Road segments; each undirected pair is drawn once, one-way segments
  // optionally dashed.
  out << "<g stroke=\"" << options.road_color << "\" stroke-width=\""
      << options.road_width << "\" stroke-linecap=\"round\">\n";
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const Edge& e : g.Neighbors(u)) {
      const bool two_way = g.EdgeCost(e.to, u).ok();
      if (two_way && e.to < u) continue;  // draw each pair once
      out << "<line x1=\"" << px(g.point(u)) << "\" y1=\""
          << py(g.point(u)) << "\" x2=\"" << px(g.point(e.to))
          << "\" y2=\"" << py(g.point(e.to)) << "\"";
      if (!two_way && options.draw_one_way_as_dashed) {
        out << " stroke-dasharray=\"4 3\"";
      }
      out << "/>\n";
    }
  }
  out << "</g>\n";

  if (route.size() >= 2) {
    out << "<polyline fill=\"none\" stroke=\"" << options.route_color
        << "\" stroke-width=\"" << options.route_width
        << "\" stroke-linejoin=\"round\" stroke-linecap=\"round\" "
           "points=\"";
    for (const NodeId u : route) {
      if (!g.HasNode(u)) continue;
      out << px(g.point(u)) << "," << py(g.point(u)) << " ";
    }
    out << "\"/>\n";
  }
  if (!route.empty() && options.node_radius > 0.0) {
    for (const NodeId u : {route.front(), route.back()}) {
      if (!g.HasNode(u)) continue;
      out << "<circle cx=\"" << px(g.point(u)) << "\" cy=\""
          << py(g.point(u)) << "\" r=\"" << options.node_radius * 2.0
          << "\" fill=\"" << options.endpoint_color << "\"/>\n";
    }
  }
  out << "</svg>\n";
  if (!out) return Status::Internal("SVG stream write failed");
  return Status::OK();
}

Status SaveSvgFile(const Graph& g, const std::vector<NodeId>& route,
                   const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path);
  return WriteSvg(g, route, out, options);
}

}  // namespace atis::graph
