#include "graph/traffic.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace atis::graph {

Status TrafficOverlay::ValidateSegment(NodeId u, NodeId v) const {
  if (!base_->HasNode(u) || !base_->HasNode(v)) {
    return Status::InvalidArgument("unknown node in segment");
  }
  if (!base_->EdgeCost(u, v).ok()) {
    return Status::NotFound("no segment " + std::to_string(u) + " -> " +
                            std::to_string(v));
  }
  return Status::OK();
}

Status TrafficOverlay::SetCongestion(NodeId u, NodeId v, double factor) {
  ATIS_RETURN_NOT_OK(ValidateSegment(u, v));
  if (factor < 1.0) {
    return Status::InvalidArgument("congestion factor must be >= 1");
  }
  if (factor == 1.0) {
    congestion_.erase({u, v});
  } else {
    congestion_[{u, v}] = factor;
  }
  return Status::OK();
}

Status TrafficOverlay::SetCongestionBothWays(NodeId u, NodeId v,
                                             double factor) {
  ATIS_RETURN_NOT_OK(SetCongestion(u, v, factor));
  return SetCongestion(v, u, factor);
}

Status TrafficOverlay::CloseSegment(NodeId u, NodeId v) {
  ATIS_RETURN_NOT_OK(ValidateSegment(u, v));
  closed_[{u, v}] = true;
  return Status::OK();
}

Status TrafficOverlay::ReopenSegment(NodeId u, NodeId v) {
  if (closed_.erase({u, v}) == 0) {
    return Status::NotFound("segment was not closed");
  }
  return Status::OK();
}

Status TrafficOverlay::SetTimeProfile(
    std::vector<std::pair<double, double>> breakpoints) {
  for (const auto& [hour, factor] : breakpoints) {
    if (hour < 0.0 || hour >= 24.0) {
      return Status::InvalidArgument("profile hour outside [0, 24)");
    }
    if (factor < 1.0) {
      return Status::InvalidArgument("profile factor must be >= 1");
    }
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  for (size_t i = 1; i < breakpoints.size(); ++i) {
    if (breakpoints[i].first == breakpoints[i - 1].first) {
      return Status::InvalidArgument("duplicate profile hour");
    }
  }
  profile_ = std::move(breakpoints);
  return Status::OK();
}

double TrafficOverlay::ProfileFactor(double hour) const {
  if (profile_.empty() || hour < 0.0) return 1.0;
  hour = hour - 24.0 * std::floor(hour / 24.0);  // wrap into [0, 24)
  // Largest breakpoint hour <= hour; wraps to the last entry of the
  // previous day when `hour` precedes the first breakpoint.
  double factor = profile_.back().second;
  for (const auto& [h, f] : profile_) {
    if (h <= hour) {
      factor = f;
    } else {
      break;
    }
  }
  return factor;
}

Result<Graph> TrafficOverlay::Snapshot(double hour) const {
  Graph out;
  for (NodeId u = 0; u < static_cast<NodeId>(base_->num_nodes()); ++u) {
    const Point& p = base_->point(u);
    out.AddNode(p.x, p.y);
  }
  const double time_factor = ProfileFactor(hour);
  for (NodeId u = 0; u < static_cast<NodeId>(base_->num_nodes()); ++u) {
    for (const Edge& e : base_->Neighbors(u)) {
      if (closed_.count({u, e.to}) != 0) continue;
      double factor = time_factor;
      const auto it = congestion_.find({u, e.to});
      if (it != congestion_.end()) factor *= it->second;
      ATIS_RETURN_NOT_OK(out.AddEdge(u, e.to, e.cost * factor));
    }
  }
  return out;
}

}  // namespace atis::graph
