// Real-time traffic overlay: the "coupled with real-time traffic
// information" half of the ATIS motivation (Section 1.1).
//
// A TrafficOverlay layers mutable conditions over an immutable base map:
// per-segment congestion factors, incident closures, and a time-of-day
// profile (rush-hour curve). Snapshot() materialises the effective graph
// for a given clock time, which any of the path-computation algorithms
// then run on unchanged.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace atis::graph {

class TrafficOverlay {
 public:
  /// The overlay observes but never mutates the base map. The base graph
  /// must outlive the overlay.
  explicit TrafficOverlay(const Graph* base) : base_(base) {}

  /// Multiplies the travel cost of directed segment u -> v by `factor`
  /// (>= 1: congestion; exactly 1 clears). With parallel edges the factor
  /// applies to all of them. InvalidArgument on unknown segment or
  /// factor < 1.
  Status SetCongestion(NodeId u, NodeId v, double factor);

  /// Congestion on both directions of an undirected segment.
  Status SetCongestionBothWays(NodeId u, NodeId v, double factor);

  /// Incident: removes the directed segment from snapshots entirely.
  Status CloseSegment(NodeId u, NodeId v);
  Status ReopenSegment(NodeId u, NodeId v);

  /// Time-of-day multiplier: piecewise-constant breakpoints
  /// (hour in [0, 24), factor >= 1), applied to every segment. The factor
  /// at hour h is the entry with the largest hour <= h (wrapping to the
  /// last entry before hour 0). An empty profile means factor 1.
  Status SetTimeProfile(std::vector<std::pair<double, double>> breakpoints);
  double ProfileFactor(double hour) const;

  /// The effective drivable graph at clock time `hour`; pass a negative
  /// hour to ignore the time profile. Closed segments are absent; all
  /// other costs are base * congestion * profile.
  Result<Graph> Snapshot(double hour = -1.0) const;

  size_t num_congested() const { return congestion_.size(); }
  size_t num_closed() const { return closed_.size(); }
  const Graph& base() const { return *base_; }

 private:
  using SegmentKey = std::pair<NodeId, NodeId>;

  Status ValidateSegment(NodeId u, NodeId v) const;

  const Graph* base_;
  std::map<SegmentKey, double> congestion_;
  std::map<SegmentKey, bool> closed_;
  std::vector<std::pair<double, double>> profile_;  // sorted by hour
};

}  // namespace atis::graph
