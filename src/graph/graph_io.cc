#include "graph/graph_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"

namespace atis::graph {

namespace {
constexpr char kMagicV1[] = "ATISG1";
constexpr char kMagicV2[] = "ATISG2";

Status WriteBody(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << "\n";
  out << std::setprecision(17);
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    const Point& p = g.point(u);
    out << p.x << " " << p.y << "\n";
  }
  out << g.num_edges() << "\n";
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const Edge& e : g.Neighbors(u)) {
      out << u << " " << e.to << " " << e.cost << "\n";
    }
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<Graph> ReadBody(std::istream& in) {
  size_t num_nodes = 0;
  in >> num_nodes;
  if (!in) return Status::Corruption("truncated node count");
  Graph g;
  for (size_t i = 0; i < num_nodes; ++i) {
    double x = 0.0;
    double y = 0.0;
    in >> x >> y;
    if (!in) return Status::Corruption("truncated node list");
    g.AddNode(x, y);
  }
  size_t num_edges = 0;
  in >> num_edges;
  if (!in) return Status::Corruption("truncated edge count");
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    double cost = 0.0;
    in >> u >> v >> cost;
    if (!in) return Status::Corruption("truncated edge list");
    ATIS_RETURN_NOT_OK(g.AddEdge(u, v, cost));
  }
  return g;
}
}  // namespace

Status WriteGraphText(const Graph& g, std::ostream& out) {
  out << kMagicV1 << "\n";
  return WriteBody(g, out);
}

Status WriteGraphText(const Graph& g, StoreLayout layout,
                      std::ostream& out) {
  out << kMagicV2 << "\n"
      << "layout " << StoreLayoutName(layout) << "\n";
  return WriteBody(g, out);
}

Result<Graph> ReadGraphText(std::istream& in) {
  ATIS_ASSIGN_OR_RETURN(GraphFile file, ReadGraphFileText(in));
  return std::move(file.graph);
}

Result<GraphFile> ReadGraphFileText(std::istream& in) {
  std::string magic;
  in >> magic;
  GraphFile file;
  if (magic == kMagicV2) {
    std::string key;
    std::string name;
    in >> key >> name;
    if (!in || key != "layout") {
      return Status::Corruption("ATISG2 header missing layout line");
    }
    if (!StoreLayoutFromName(name, &file.layout)) {
      return Status::Corruption("unknown store layout: " + name);
    }
  } else if (magic != kMagicV1) {
    return Status::Corruption("bad magic: expected ATISG1 or ATISG2");
  }
  ATIS_ASSIGN_OR_RETURN(file.graph, ReadBody(in));
  return file;
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ostringstream out;
  ATIS_RETURN_NOT_OK(WriteGraphText(g, out));
  return WriteFileAtomic(path, out.str());
}

Status SaveGraphFile(const Graph& g, StoreLayout layout,
                     const std::string& path) {
  std::ostringstream out;
  ATIS_RETURN_NOT_OK(WriteGraphText(g, layout, out));
  return WriteFileAtomic(path, out.str());
}

Result<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraphText(in);
}

Result<GraphFile> LoadGraphFileWithLayout(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraphFileText(in);
}

}  // namespace atis::graph
