#include "graph/graph_io.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"

namespace atis::graph {

namespace {
constexpr char kMagicV1[] = "ATISG1";
constexpr char kMagicV2[] = "ATISG2";

/// Where a parse is happening, for error messages: optional file path and
/// size (stream-based entry points have neither), plus the 1-based line
/// of the token being read.
struct ParseContext {
  std::string path;         // empty when parsing a raw stream
  uint64_t file_size = 0;   // bytes; 0 when unknown
  uint64_t line = 1;        // 1-based line of the next unread token
};

std::string Describe(const ParseContext& ctx, const std::string& what) {
  std::ostringstream msg;
  msg << what << " (line " << ctx.line;
  if (!ctx.path.empty()) {
    msg << " of '" << ctx.path << "', " << ctx.file_size << " bytes";
  }
  msg << ")";
  return msg.str();
}

/// Skips whitespace counting newlines, then extracts one value with
/// operator>>. On failure the context's line points at the offending (or
/// missing) token.
template <typename T>
bool ReadToken(std::istream& in, ParseContext& ctx, T* out) {
  int c = in.peek();
  while (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
    if (c == '\n') ++ctx.line;
    in.get();
    c = in.peek();
  }
  in >> *out;
  return static_cast<bool>(in);
}

Status WriteBody(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << "\n";
  out << std::setprecision(17);
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    const Point& p = g.point(u);
    out << p.x << " " << p.y << "\n";
  }
  out << g.num_edges() << "\n";
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const Edge& e : g.Neighbors(u)) {
      out << u << " " << e.to << " " << e.cost << "\n";
    }
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<Graph> ReadBody(std::istream& in, ParseContext& ctx) {
  size_t num_nodes = 0;
  if (!ReadToken(in, ctx, &num_nodes)) {
    return Status::Corruption(Describe(ctx, "truncated node count"));
  }
  Graph g;
  for (size_t i = 0; i < num_nodes; ++i) {
    double x = 0.0;
    double y = 0.0;
    if (!ReadToken(in, ctx, &x) || !ReadToken(in, ctx, &y)) {
      std::ostringstream what;
      what << "truncated node list: node " << i << " of " << num_nodes;
      return Status::Corruption(Describe(ctx, what.str()));
    }
    g.AddNode(x, y);
  }
  size_t num_edges = 0;
  if (!ReadToken(in, ctx, &num_edges)) {
    return Status::Corruption(Describe(ctx, "truncated edge count"));
  }
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    double cost = 0.0;
    if (!ReadToken(in, ctx, &u) || !ReadToken(in, ctx, &v) ||
        !ReadToken(in, ctx, &cost)) {
      std::ostringstream what;
      what << "truncated edge list: edge " << i << " of " << num_edges;
      return Status::Corruption(Describe(ctx, what.str()));
    }
    Status added = g.AddEdge(u, v, cost);
    if (!added.ok()) {
      std::ostringstream what;
      what << "bad edge " << u << " -> " << v << ": " << added.message();
      return Status::Corruption(Describe(ctx, what.str()));
    }
  }
  return g;
}

Result<GraphFile> ReadGraphFileInternal(std::istream& in, ParseContext ctx) {
  std::string magic;
  if (!ReadToken(in, ctx, &magic)) {
    return Status::Corruption(Describe(ctx, "missing magic line"));
  }
  GraphFile file;
  if (magic == kMagicV2) {
    std::string key;
    std::string name;
    if (!ReadToken(in, ctx, &key) || !ReadToken(in, ctx, &name) ||
        key != "layout") {
      return Status::Corruption(
          Describe(ctx, "ATISG2 header missing layout line"));
    }
    if (!StoreLayoutFromName(name, &file.layout)) {
      return Status::Corruption(Describe(ctx, "unknown store layout: " + name));
    }
  } else if (magic != kMagicV1) {
    return Status::Corruption(
        Describe(ctx, "bad magic '" + magic + "': expected ATISG1 or ATISG2"));
  }
  ATIS_ASSIGN_OR_RETURN(file.graph, ReadBody(in, ctx));
  return file;
}

Result<uint64_t> FileSizeOf(const std::string& path) {
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  if (!probe) return Status::NotFound("cannot open " + path);
  return static_cast<uint64_t>(probe.tellg());
}

}  // namespace

Status WriteGraphText(const Graph& g, std::ostream& out) {
  out << kMagicV1 << "\n";
  return WriteBody(g, out);
}

Status WriteGraphText(const Graph& g, StoreLayout layout,
                      std::ostream& out) {
  out << kMagicV2 << "\n"
      << "layout " << StoreLayoutName(layout) << "\n";
  return WriteBody(g, out);
}

Result<Graph> ReadGraphText(std::istream& in) {
  ATIS_ASSIGN_OR_RETURN(GraphFile file, ReadGraphFileText(in));
  return std::move(file.graph);
}

Result<GraphFile> ReadGraphFileText(std::istream& in) {
  return ReadGraphFileInternal(in, ParseContext{});
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ostringstream out;
  ATIS_RETURN_NOT_OK(WriteGraphText(g, out));
  return WriteFileAtomic(path, out.str());
}

Status SaveGraphFile(const Graph& g, StoreLayout layout,
                     const std::string& path) {
  std::ostringstream out;
  ATIS_RETURN_NOT_OK(WriteGraphText(g, layout, out));
  return WriteFileAtomic(path, out.str());
}

Result<Graph> LoadGraphFile(const std::string& path) {
  ATIS_ASSIGN_OR_RETURN(GraphFile file, LoadGraphFileWithLayout(path));
  return std::move(file.graph);
}

Result<GraphFile> LoadGraphFileWithLayout(const std::string& path) {
  ATIS_ASSIGN_OR_RETURN(uint64_t size, FileSizeOf(path));
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  ParseContext ctx;
  ctx.path = path;
  ctx.file_size = size;
  return ReadGraphFileInternal(in, std::move(ctx));
}

// ---------------------------------------------------------------------------
// StreamingGraphWriter

Result<StreamingGraphWriter> StreamingGraphWriter::Create(
    const std::string& path, StoreLayout layout, uint64_t num_nodes,
    uint64_t num_edges) {
  if (num_nodes == 0 && num_edges > 0) {
    return Status::InvalidArgument("graph with edges must have nodes");
  }
  StreamingGraphWriter w;
  w.path_ = path;
  w.tmp_path_ = path + ".tmp." + std::to_string(::getpid());
  w.num_nodes_ = num_nodes;
  w.num_edges_ = num_edges;
  w.out_ = std::make_unique<std::ofstream>(w.tmp_path_,
                                           std::ios::binary | std::ios::trunc);
  if (!*w.out_) {
    return Status::Internal("cannot create " + w.tmp_path_);
  }
  *w.out_ << kMagicV2 << "\n"
          << "layout " << StoreLayoutName(layout) << "\n"
          << num_nodes << "\n"
          << std::setprecision(17);
  return w;
}

StreamingGraphWriter::~StreamingGraphWriter() {
  if (!finished_ && out_ != nullptr) {
    out_->close();
    std::remove(tmp_path_.c_str());
  }
}

Status StreamingGraphWriter::AddNode(double x, double y) {
  if (finished_ || out_ == nullptr) {
    return Status::InvalidArgument("writer already finished");
  }
  if (nodes_written_ >= num_nodes_) {
    return Status::InvalidArgument("more nodes than declared (" +
                                   std::to_string(num_nodes_) + ")");
  }
  *out_ << x << " " << y << "\n";
  ++nodes_written_;
  if (nodes_written_ == num_nodes_) *out_ << num_edges_ << "\n";
  if (!*out_) return Status::Internal("write failed: " + tmp_path_);
  return Status::OK();
}

Status StreamingGraphWriter::AddEdge(NodeId u, NodeId v, double cost) {
  if (finished_ || out_ == nullptr) {
    return Status::InvalidArgument("writer already finished");
  }
  if (nodes_written_ != num_nodes_) {
    return Status::InvalidArgument("edges must follow all nodes");
  }
  if (edges_written_ >= num_edges_) {
    return Status::InvalidArgument("more edges than declared (" +
                                   std::to_string(num_edges_) + ")");
  }
  if (u < 0 || v < 0 || static_cast<uint64_t>(u) >= num_nodes_ ||
      static_cast<uint64_t>(v) >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  *out_ << u << " " << v << " " << cost << "\n";
  ++edges_written_;
  if (!*out_) return Status::Internal("write failed: " + tmp_path_);
  return Status::OK();
}

Status StreamingGraphWriter::Finish() {
  if (finished_ || out_ == nullptr) {
    return Status::InvalidArgument("writer already finished");
  }
  if (nodes_written_ != num_nodes_ || edges_written_ != num_edges_) {
    out_->close();
    std::remove(tmp_path_.c_str());
    finished_ = true;
    return Status::InvalidArgument(
        "record counts do not match the declared header: wrote " +
        std::to_string(nodes_written_) + "/" + std::to_string(num_nodes_) +
        " nodes, " + std::to_string(edges_written_) + "/" +
        std::to_string(num_edges_) + " edges");
  }
  // A zero-node graph never reaches the AddNode branch that emits the
  // edge-count sentinel.
  if (num_nodes_ == 0) *out_ << num_edges_ << "\n";
  out_->flush();
  if (!*out_) return Status::Internal("flush failed: " + tmp_path_);
  out_->close();
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    finished_ = true;
    return Status::Internal("rename " + tmp_path_ + " -> " + path_ +
                            " failed");
  }
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StreamingGraphReader

Result<StreamingGraphReader> StreamingGraphReader::Open(
    const std::string& path) {
  StreamingGraphReader r;
  r.path_ = path;
  ATIS_ASSIGN_OR_RETURN(r.file_size_, FileSizeOf(path));
  r.in_ = std::make_unique<std::ifstream>(path);
  if (!*r.in_) return Status::NotFound("cannot open " + path);
  ParseContext ctx;
  ctx.path = path;
  ctx.file_size = r.file_size_;
  std::string magic;
  if (!ReadToken(*r.in_, ctx, &magic)) {
    return Status::Corruption(Describe(ctx, "missing magic line"));
  }
  if (magic == kMagicV2) {
    std::string key;
    std::string name;
    if (!ReadToken(*r.in_, ctx, &key) || !ReadToken(*r.in_, ctx, &name) ||
        key != "layout") {
      return Status::Corruption(
          Describe(ctx, "ATISG2 header missing layout line"));
    }
    if (!StoreLayoutFromName(name, &r.layout_)) {
      return Status::Corruption(Describe(ctx, "unknown store layout: " + name));
    }
  } else if (magic != kMagicV1) {
    return Status::Corruption(
        Describe(ctx, "bad magic '" + magic + "': expected ATISG1 or ATISG2"));
  }
  if (!ReadToken(*r.in_, ctx, &r.num_nodes_)) {
    return Status::Corruption(Describe(ctx, "truncated node count"));
  }
  r.line_ = ctx.line;
  return r;
}

Status StreamingGraphReader::Fail(const std::string& what) const {
  ParseContext ctx;
  ctx.path = path_;
  ctx.file_size = file_size_;
  ctx.line = line_;
  return Status::Corruption(Describe(ctx, what));
}

Status StreamingGraphReader::NextNode(NodeRecord* out) {
  if (nodes_read_ >= num_nodes_) {
    return Fail("read past the declared node count (" +
                std::to_string(num_nodes_) + ")");
  }
  ParseContext ctx;
  ctx.line = line_;
  if (!ReadToken(*in_, ctx, &out->x) || !ReadToken(*in_, ctx, &out->y)) {
    line_ = ctx.line;
    return Fail("truncated node list: node " + std::to_string(nodes_read_) +
                " of " + std::to_string(num_nodes_));
  }
  line_ = ctx.line;
  ++nodes_read_;
  return Status::OK();
}

Status StreamingGraphReader::BeginEdges() {
  if (edge_section_open_) return Status::OK();
  if (nodes_read_ != num_nodes_) {
    return Fail("edge section entered before all nodes were read");
  }
  ParseContext ctx;
  ctx.line = line_;
  if (!ReadToken(*in_, ctx, &num_edges_)) {
    line_ = ctx.line;
    return Fail("truncated edge count");
  }
  line_ = ctx.line;
  edge_section_open_ = true;
  return Status::OK();
}

Status StreamingGraphReader::NextEdge(EdgeRecord* out) {
  ATIS_RETURN_NOT_OK(BeginEdges());
  if (edges_read_ >= num_edges_) {
    return Fail("read past the declared edge count (" +
                std::to_string(num_edges_) + ")");
  }
  ParseContext ctx;
  ctx.line = line_;
  if (!ReadToken(*in_, ctx, &out->u) || !ReadToken(*in_, ctx, &out->v) ||
      !ReadToken(*in_, ctx, &out->cost)) {
    line_ = ctx.line;
    return Fail("truncated edge list: edge " + std::to_string(edges_read_) +
                " of " + std::to_string(num_edges_));
  }
  line_ = ctx.line;
  ++edges_read_;
  return Status::OK();
}

}  // namespace atis::graph
