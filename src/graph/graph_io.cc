#include "graph/graph_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace atis::graph {

namespace {
constexpr char kMagic[] = "ATISG1";
}

Status WriteGraphText(const Graph& g, std::ostream& out) {
  out << kMagic << "\n" << g.num_nodes() << "\n";
  out << std::setprecision(17);
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    const Point& p = g.point(u);
    out << p.x << " " << p.y << "\n";
  }
  out << g.num_edges() << "\n";
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const Edge& e : g.Neighbors(u)) {
      out << u << " " << e.to << " " << e.cost << "\n";
    }
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<Graph> ReadGraphText(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    return Status::Corruption("bad magic: expected ATISG1");
  }
  size_t num_nodes = 0;
  in >> num_nodes;
  if (!in) return Status::Corruption("truncated node count");
  Graph g;
  for (size_t i = 0; i < num_nodes; ++i) {
    double x = 0.0;
    double y = 0.0;
    in >> x >> y;
    if (!in) return Status::Corruption("truncated node list");
    g.AddNode(x, y);
  }
  size_t num_edges = 0;
  in >> num_edges;
  if (!in) return Status::Corruption("truncated edge count");
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    double cost = 0.0;
    in >> u >> v >> cost;
    if (!in) return Status::Corruption("truncated edge list");
    ATIS_RETURN_NOT_OK(g.AddEdge(u, v, cost));
  }
  return g;
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WriteGraphText(g, out);
}

Result<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraphText(in);
}

}  // namespace atis::graph
