// Physical layout policies for the relational graph store.
//
// The paper's cost model counts block accesses, so the physical placement
// of tuples — which node/edge rows share a disk block — is a first-class
// performance lever. A Hilbert space-filling curve maps 2-D coordinates to
// a 1-D index that preserves spatial locality: nodes that are near each
// other on the map land near each other on the curve, so sorting tuples by
// Hilbert index before heap-file insertion packs geographically-close
// nodes (exactly the ones A*/Dijkstra expand together) into the same
// blocks.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace atis::graph {

/// Physical tuple order used when populating a RelationalGraphStore.
enum class StoreLayout : uint8_t {
  /// Insertion order = node-id order. The paper's implicit layout; keeps
  /// all paper-mode results bit-identical. Default.
  kRowOrder = 0,
  /// Tuples sorted by Hilbert-curve index of the node coordinates, with a
  /// grid-cell fallback when the geometry is degenerate.
  kHilbert = 1,
};

/// Canonical lower-case name ("roworder" / "hilbert").
const char* StoreLayoutName(StoreLayout layout);

/// Parses a layout name (case-sensitive, canonical form). Returns false
/// and leaves `*out` untouched on unknown names.
bool StoreLayoutFromName(std::string_view name, StoreLayout* out);

/// Distance along the order-`order` Hilbert curve of the grid cell (x, y).
/// Coordinates must lie in [0, 2^order); the result lies in
/// [0, 4^order). Iterative bit-interleaving form (Wikipedia's xy2d).
uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y);

/// Grid side (2^kHilbertOrder cells per axis) used by ComputeNodeOrder.
/// Order 16 resolves the store's full int16 fixed-point coordinate range,
/// so two nodes only share a curve cell if they share a stored coordinate.
inline constexpr uint32_t kHilbertOrder = 16;

/// Maps raw coordinates to Hilbert-curve keys over a fixed bounding box.
/// This is the exact key function ComputeNodeOrder sorts by, factored out
/// so streaming loads — which see one node at a time and sort externally —
/// produce the same physical order as the in-memory path.
struct HilbertKeyMapper {
  double min_x = 0.0;
  double min_y = 0.0;
  double scale = 0.0;  ///< 0 = degenerate bbox: every key is 0 (id order)

  /// Builds a mapper for the given bounding box; a box degenerate on both
  /// axes yields the all-zero-key mapper (the id-order fallback).
  static HilbertKeyMapper FromBounds(double min_x, double min_y,
                                     double max_x, double max_y);

  bool degenerate() const { return !(scale > 0.0); }

  uint64_t Key(double x, double y) const;
};

/// The permutation of node ids giving the physical insertion order for
/// `layout`:
///   kRowOrder — identity (node-id order).
///   kHilbert  — ascending Hilbert index of each node's coordinates
///               quantised onto a 2^kHilbertOrder grid over the graph's
///               bounding box; ties (shared cells) break by node id.
/// Fallback: when the bounding box is degenerate on both axes (absent or
/// constant geometry) there is no spatial signal, and the order falls back
/// to grid cells in id space — i.e. node-id order, which for generated
/// grids is already row-major cell order.
std::vector<NodeId> ComputeNodeOrder(const Graph& g, StoreLayout layout);

}  // namespace atis::graph
