// Text serialisation of graphs, for examples and offline tooling.
//
// Format ("ATISG1"):
//   ATISG1
//   <num_nodes>
//   <x> <y>                 (one line per node, id = line order)
//   <num_directed_edges>
//   <u> <v> <cost>          (one line per directed edge)
//
// Format ("ATISG2") adds the intended physical store layout to the header
// so a saved graph round-trips the layout through save/load:
//   ATISG2
//   layout <roworder|hilbert>
//   ...same body as ATISG1...
// Readers accept both; an ATISG1 file loads with layout = kRowOrder.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/spatial_layout.h"

namespace atis::graph {

/// A loaded graph file: the graph plus the store layout recorded in its
/// header (kRowOrder for version-1 files, which predate layouts).
struct GraphFile {
  Graph graph;
  StoreLayout layout = StoreLayout::kRowOrder;
};

Status WriteGraphText(const Graph& g, std::ostream& out);
/// Writes an ATISG2 file carrying `layout` in the header.
Status WriteGraphText(const Graph& g, StoreLayout layout, std::ostream& out);
Result<Graph> ReadGraphText(std::istream& in);
/// Reads either format; reports the header layout (kRowOrder for ATISG1).
Result<GraphFile> ReadGraphFileText(std::istream& in);

Status SaveGraphFile(const Graph& g, const std::string& path);
Status SaveGraphFile(const Graph& g, StoreLayout layout,
                     const std::string& path);
Result<Graph> LoadGraphFile(const std::string& path);
Result<GraphFile> LoadGraphFileWithLayout(const std::string& path);

}  // namespace atis::graph
