// Text serialisation of graphs, for examples and offline tooling.
//
// Format ("ATISG1"):
//   ATISG1
//   <num_nodes>
//   <x> <y>                 (one line per node, id = line order)
//   <num_directed_edges>
//   <u> <v> <cost>          (one line per directed edge)
//
// Format ("ATISG2") adds the intended physical store layout to the header
// so a saved graph round-trips the layout through save/load:
//   ATISG2
//   layout <roworder|hilbert>
//   ...same body as ATISG1...
// Readers accept both; an ATISG1 file loads with layout = kRowOrder.
//
// Two access shapes:
//   * whole-graph (WriteGraphText / ReadGraphFileText, Save/Load): the
//     classic API — materialises a Graph, fine up to city scale;
//   * streaming (StreamingGraphWriter / StreamingGraphReader): record-at-
//     a-time, O(1) memory — the only way continent-scale (~1M node) maps
//     move through the build pipeline without ever being resident.
// Parse errors from either shape carry the 1-based line number (and the
// file path + size for the file-based entry points), so a bad record in a
// multi-GB input is actionable instead of a bare "truncated edge list".
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "graph/spatial_layout.h"

namespace atis::graph {

/// A loaded graph file: the graph plus the store layout recorded in its
/// header (kRowOrder for version-1 files, which predate layouts).
struct GraphFile {
  Graph graph;
  StoreLayout layout = StoreLayout::kRowOrder;
};

Status WriteGraphText(const Graph& g, std::ostream& out);
/// Writes an ATISG2 file carrying `layout` in the header.
Status WriteGraphText(const Graph& g, StoreLayout layout, std::ostream& out);
Result<Graph> ReadGraphText(std::istream& in);
/// Reads either format; reports the header layout (kRowOrder for ATISG1).
Result<GraphFile> ReadGraphFileText(std::istream& in);

Status SaveGraphFile(const Graph& g, const std::string& path);
Status SaveGraphFile(const Graph& g, StoreLayout layout,
                     const std::string& path);
Result<Graph> LoadGraphFile(const std::string& path);
Result<GraphFile> LoadGraphFileWithLayout(const std::string& path);

/// Record-at-a-time ATISG2 writer. Node and edge counts are declared up
/// front (the header carries them before the record sections), then
/// records stream through without any whole-graph buffering. The file is
/// written to `<path>.tmp.<pid>` and renamed into place by Finish(), so a
/// crashed or abandoned write never leaves a torn file at `path`.
class StreamingGraphWriter {
 public:
  /// Creates `path` for writing. InvalidArgument on inconsistent counts
  /// (num_edges with zero nodes), kInternal when the file cannot open.
  static Result<StreamingGraphWriter> Create(const std::string& path,
                                             StoreLayout layout,
                                             uint64_t num_nodes,
                                             uint64_t num_edges);

  StreamingGraphWriter(StreamingGraphWriter&&) = default;
  StreamingGraphWriter& operator=(StreamingGraphWriter&&) = default;
  /// An unfinished writer removes its temporary file.
  ~StreamingGraphWriter();

  /// Appends the next node record; ids are implicit (call order). Must be
  /// called exactly num_nodes times before the first AddEdge.
  Status AddNode(double x, double y);

  /// Appends one directed edge record. Must follow all AddNode calls and
  /// be called exactly num_edges times before Finish.
  Status AddEdge(NodeId u, NodeId v, double cost);

  /// Validates the declared counts were met, flushes, and renames the
  /// temporary into `path`. The writer is unusable afterwards.
  Status Finish();

 private:
  StreamingGraphWriter() = default;

  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<std::ofstream> out_;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t nodes_written_ = 0;
  uint64_t edges_written_ = 0;
  bool finished_ = false;
};

/// Record-at-a-time ATISG1/ATISG2 reader. Open() parses the header (and
/// the node-count / edge-count sentinels lazily as the sections are
/// entered); NextNode / NextEdge then step through the records with O(1)
/// memory. Every parse error names the path, the 1-based line, and the
/// file size.
class StreamingGraphReader {
 public:
  struct NodeRecord {
    double x = 0.0;
    double y = 0.0;
  };
  struct EdgeRecord {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    double cost = 0.0;
  };

  static Result<StreamingGraphReader> Open(const std::string& path);

  StreamingGraphReader(StreamingGraphReader&&) = default;
  StreamingGraphReader& operator=(StreamingGraphReader&&) = default;

  StoreLayout layout() const { return layout_; }
  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t file_size_bytes() const { return file_size_; }

  /// Reads the next node record. Call exactly num_nodes() times.
  Status NextNode(NodeRecord* out);
  /// Consumes the edge-count sentinel after the node section, making
  /// num_edges() valid. Idempotent; NextEdge calls it implicitly.
  Status BeginEdges();
  /// Reads the next edge record; call exactly num_edges() times.
  Status NextEdge(EdgeRecord* out);

  uint64_t nodes_read() const { return nodes_read_; }
  uint64_t edges_read() const { return edges_read_; }

 private:
  StreamingGraphReader() = default;
  Status Fail(const std::string& what) const;

  std::string path_;
  std::unique_ptr<std::ifstream> in_;
  uint64_t file_size_ = 0;
  uint64_t line_ = 1;  ///< 1-based line of the next unread token
  StoreLayout layout_ = StoreLayout::kRowOrder;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t nodes_read_ = 0;
  uint64_t edges_read_ = 0;
  bool edge_section_open_ = false;
};

}  // namespace atis::graph
