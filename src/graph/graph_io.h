// Text serialisation of graphs, for examples and offline tooling.
//
// Format ("ATISG1"):
//   ATISG1
//   <num_nodes>
//   <x> <y>                 (one line per node, id = line order)
//   <num_directed_edges>
//   <u> <v> <cost>          (one line per directed edge)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace atis::graph {

Status WriteGraphText(const Graph& g, std::ostream& out);
Result<Graph> ReadGraphText(std::istream& in);

Status SaveGraphFile(const Graph& g, const std::string& path);
Result<Graph> LoadGraphFile(const std::string& path);

}  // namespace atis::graph
