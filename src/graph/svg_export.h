// SVG rendering of maps and routes — the route *display* service of
// Section 1.1 in a form a release can actually ship (the ASCII renderer
// in core/route_service.h is its terminal sibling).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace atis::graph {

struct SvgOptions {
  int width_px = 800;
  int height_px = 800;
  double margin_px = 20.0;
  std::string road_color = "#b8b8b8";
  std::string route_color = "#d4572a";
  std::string endpoint_color = "#1c5d99";
  double road_width = 1.0;
  double route_width = 3.0;
  double node_radius = 2.5;   ///< endpoints only; 0 draws no markers
  bool draw_one_way_as_dashed = true;
};

/// Writes an SVG of the whole graph with an optional route highlighted.
/// The route need not be valid; segments are drawn between consecutive
/// node coordinates regardless.
Status WriteSvg(const Graph& g, const std::vector<NodeId>& route,
                std::ostream& out, const SvgOptions& options = {});

Status SaveSvgFile(const Graph& g, const std::vector<NodeId>& route,
                   const std::string& path, const SvgOptions& options = {});

}  // namespace atis::graph
