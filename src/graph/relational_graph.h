// Database-resident graph: the paper's pair of relations.
//
//   S (edge relation, read-only):  <begin_node, end_node, edge_cost>
//     - primary random-hash index on begin_node
//     - T_s = 32 bytes  =>  Bf_s = 128 tuples/block (Table 4A)
//   R (node relation, working set): <node_id, x, y, status, path, path_cost>
//     - primary ISAM index on node_id
//     - T_r = 16 bytes  =>  Bf_r = 256 tuples/block (Table 4A)
//
// The `status` field implements the node lists: null (untouched), open
// (frontierSet), closed (exploredSet), current. The `path` field points to
// the predecessor node on the best known path; following it from the
// destination reconstructs the route. Coordinates are stored as 1/16-unit
// fixed point so R's tuple fits the paper's 16 bytes; edge costs in S are
// computed by callers from the same quantised coordinates, keeping the
// geometric estimators consistent with stored geometry.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/spatial_layout.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace atis::graph {

enum class NodeStatus : int8_t {
  kNull = 0,
  kOpen = 1,     ///< in frontierSet
  kClosed = 2,   ///< in exploredSet
  kCurrent = 3,  ///< being expanded this iteration
};

class RelationalGraphStore {
 public:
  /// Fixed-point scale for stored coordinates.
  static constexpr double kCoordScale = 16.0;

  struct NodeRow {
    NodeId id = kInvalidNode;
    double x = 0.0;
    double y = 0.0;
    NodeStatus status = NodeStatus::kNull;
    NodeId pred = kInvalidNode;  ///< the "path" field
    double path_cost = 0.0;      ///< C(s, id); +inf when unreached
  };

  struct EdgeRow {
    NodeId begin = kInvalidNode;
    NodeId end = kInvalidNode;
    double cost = 0.0;
  };

  /// One tuple of the optional landmarkDist relation L: the exact shortest
  /// path costs landmark -> node (`dist_from`) and node -> landmark
  /// (`dist_to`), both needed for admissible ALT bounds on directed maps.
  /// Distances are stored as 8-byte floats so the persisted column round
  /// trips bit-exactly — a rounded-up distance would make the estimator
  /// overestimate.
  struct LandmarkDistRow {
    int32_t ord = 0;                 ///< landmark index in selection order
    NodeId landmark = kInvalidNode;  ///< the landmark's node id
    NodeId node = kInvalidNode;
    double dist_from = 0.0;  ///< d(landmark -> node); +inf if unreachable
    double dist_to = 0.0;    ///< d(node -> landmark); +inf if unreachable
  };

  /// One tuple of the optional overlayCell relation OC: the cell a node
  /// was assigned to by the partition-boundary overlay (core/overlay.h)
  /// and whether one of its edges crosses cells. Pure topology — no
  /// metric-dependent data — so the relation survives traffic updates.
  struct OverlayCellRow {
    NodeId node = kInvalidNode;
    int32_t cell = 0;
    bool is_boundary = false;
  };

  /// One tuple of the optional overlayShortcut relation OS: a
  /// boundary-to-boundary pair of `cell` connected by at least one
  /// intra-cell path. Reachability is metric-independent, so like OC this
  /// is topology, paid once per map; the shortcut *costs* are recomputed
  /// per metric (customization) and never persisted.
  struct OverlayShortcutRow {
    int32_t cell = 0;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
  };

  /// Build-time options. The physical layout decides the heap-file
  /// insertion order of node and edge tuples; logical contents and index
  /// behaviour are identical across layouts (per-node adjacency order is
  /// preserved), only which tuples share a block changes.
  struct LoadOptions {
    StoreLayout layout = StoreLayout::kRowOrder;
    /// Run-buffer budget for the external sorts a streaming load performs
    /// (ignored by the in-memory Load path).
    size_t sort_budget_bytes = 1 << 20;
  };

  explicit RelationalGraphStore(storage::BufferPool* pool);

  /// Populates S and R from an in-memory graph and builds both primary
  /// indexes. Node coordinates are quantised to kCoordScale. May be called
  /// once per store. Node count is limited to 32767 by R's 16-bit node ids.
  Status Load(const Graph& g);
  Status Load(const Graph& g, const LoadOptions& options);

  /// Out-of-core build: populates S and R straight from an ATISG1/ATISG2
  /// file without ever materialising a Graph. Node tuples are external-
  /// sorted by Hilbert key and edge tuples by the rank of their begin
  /// node (bounded-memory run generation + k-way merge through the
  /// metered DiskManager — see storage/spill_sort.h), then heap-inserted
  /// exactly as Load would have inserted them, so the resulting store —
  /// page assignments, per-node RecordId adjacency directory, indexes —
  /// is identical to loading the materialised graph. The single-argument
  /// form takes the layout from the file header.
  Status LoadStreaming(const std::string& path);
  Status LoadStreaming(const std::string& path, const LoadOptions& options);

  /// The physical layout this store was loaded with.
  StoreLayout layout() const { return layout_; }

  /// Heap-file pages of S holding u's adjacency tuples, from the in-memory
  /// directory built at load time (no metered I/O — this is metadata, like
  /// HeapFile's own page table). Empty for nodes without out-edges.
  /// Record pages are stable: UpdateEdgeCost rewrites tuples in place.
  const std::vector<storage::PageId>& AdjacencyPageIds(NodeId u) const;

  relational::Relation& edge_relation() { return s_; }
  const relational::Relation& edge_relation() const { return s_; }
  relational::Relation& node_relation() { return r_; }
  const relational::Relation& node_relation() const { return r_; }

  size_t num_nodes() const { return r_.num_tuples(); }
  size_t num_edges() const { return s_.num_tuples(); }

  /// Adjacency list of u. Under kRowOrder this is the paper's access
  /// path — an index lookup on S.begin_node — kept bit-identical, metered
  /// blocks included. Under kHilbert the store serves the fetch from the
  /// clustered layout instead: each node's edge tuples were inserted
  /// contiguously and their record ids retained, so the fetch touches
  /// only the node's own data pages and skips the hash index, whose
  /// id-keyed buckets scatter spatially-near lookups across unrelated
  /// pages by construction. Result contents and order are identical
  /// either way (the per-node insertion sequence).
  Result<std::vector<EdgeRow>> FetchAdjacency(NodeId u) const;

  /// Node row via the ISAM index (returns the record id for updates).
  Result<std::pair<storage::RecordId, NodeRow>> GetNode(NodeId u) const;

  Status UpdateNode(storage::RecordId rid, const NodeRow& row);

  /// One REPLACE over R: status := null, path := none, path_cost := +inf.
  /// (The algorithms' initialisation step.)
  Status ResetSearchState();

  /// REPLACE of one S tuple's edge_cost (a traffic update). NotFound when
  /// the directed segment is absent. Must not race with in-flight queries.
  Status UpdateEdgeCost(NodeId u, NodeId v, double cost);

  /// (Re)creates the landmarkDist relation L from `rows` (APPENDs, metered
  /// like every other statement). Replaces any previous landmark column.
  Status StoreLandmarkDistances(const std::vector<LandmarkDistRow>& rows);

  /// Full scan of L in storage order; FailedPrecondition when no landmark
  /// column has been stored. Every block read is metered — this is the
  /// "load once per store replica" cost of the ALT estimator.
  Result<std::vector<LandmarkDistRow>> LoadLandmarkDistances() const;

  bool has_landmark_distances() const { return landmark_ != nullptr; }
  const relational::Relation* landmark_relation() const {
    return landmark_.get();
  }

  /// (Re)creates the overlay-topology relations OC and OS (APPENDs,
  /// metered). `cells` must cover every node exactly once. Replaces any
  /// previously stored overlay topology.
  Status StoreOverlayTopology(const std::vector<OverlayCellRow>& cells,
                              const std::vector<OverlayShortcutRow>& links);

  /// Full scans of OC and OS in storage order; FailedPrecondition when no
  /// overlay topology has been stored. Metered — this is the "load once
  /// per store replica" cost of the overlay index.
  Result<std::pair<std::vector<OverlayCellRow>,
                   std::vector<OverlayShortcutRow>>>
  LoadOverlayTopology() const;

  bool has_overlay_topology() const { return overlay_cells_ != nullptr; }

  /// Quantised coordinate of a node as stored (used by estimators so the
  /// heuristic sees exactly the stored geometry).
  static double Quantise(double coord) {
    return std::round(coord * kCoordScale) / kCoordScale;
  }

  // Tuple conversions (schemas below are fixed for the store's lifetime).
  static relational::Tuple ToTuple(const NodeRow& row);
  static NodeRow NodeFromTuple(const relational::Tuple& t);
  static relational::Tuple ToTuple(const EdgeRow& row);
  static EdgeRow EdgeFromTuple(const relational::Tuple& t);
  static relational::Tuple ToTuple(const LandmarkDistRow& row);
  static LandmarkDistRow LandmarkDistFromTuple(const relational::Tuple& t);
  static relational::Tuple ToTuple(const OverlayCellRow& row);
  static OverlayCellRow OverlayCellFromTuple(const relational::Tuple& t);
  static relational::Tuple ToTuple(const OverlayShortcutRow& row);
  static OverlayShortcutRow OverlayShortcutFromTuple(
      const relational::Tuple& t);

  static relational::Schema EdgeSchema();
  static relational::Schema NodeSchema();
  static relational::Schema LandmarkDistSchema();
  static relational::Schema OverlayCellSchema();
  static relational::Schema OverlayShortcutSchema();

  /// Field names (indexable keys).
  static constexpr const char* kBeginField = "begin_node";
  static constexpr const char* kNodeIdField = "node_id";

 private:
  relational::Relation s_;
  relational::Relation r_;
  std::unique_ptr<relational::Relation> landmark_;  ///< L; null until stored
  std::unique_ptr<relational::Relation> overlay_cells_;      ///< OC
  std::unique_ptr<relational::Relation> overlay_shortcuts_;  ///< OS
  bool loaded_ = false;
  StoreLayout layout_ = StoreLayout::kRowOrder;
  /// adjacency_pages_[u] = deduplicated S pages of u's edge tuples.
  std::vector<std::vector<storage::PageId>> adjacency_pages_;
  /// adjacency_rids_[u] = u's edge tuples in insertion order — the
  /// clustered access path FetchAdjacency uses under kHilbert. Stable for
  /// the store's lifetime (S tuples are updated in place, never moved).
  std::vector<std::vector<storage::RecordId>> adjacency_rids_;
};

}  // namespace atis::graph
