// Synthetic k x k grid benchmark graphs (Section 5.1, Figure 4).
//
// Nodes sit at integer coordinates (col, row), connected 4-ways to row and
// column neighbours by undirected edges. Three edge-cost models from the
// paper:
//   * kUniform     — every edge costs 1.
//   * kVariance20  — 1 + 0.2 * U[0,1]   (deterministic, seeded)
//   * kSkewed      — cheap edges along the bottom row and right column,
//                    forming a low-cost corridor from the origin corner to
//                    the diagonally opposite corner; all other edges cost 1.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/random.h"

namespace atis::graph {

enum class GridCostModel {
  kUniform,
  kVariance20,
  kSkewed,
};

std::string_view GridCostModelName(GridCostModel m);

/// The paper's benchmark query pairs on a k x k grid. The source is always
/// the origin corner; "horizontal" is the linearly opposite corner of the
/// same row, "semi-diagonal" a mid-length pair, "diagonal" the far corner.
struct GridQuery {
  NodeId source;
  NodeId destination;
};

class GridGraphGenerator {
 public:
  struct Options {
    int k = 30;                                   ///< grid side (k*k nodes)
    GridCostModel cost_model = GridCostModel::kVariance20;
    double variance_fraction = 0.2;               ///< for kVariance20
    /// Corridor edge cost for kSkewed. The default 1/32 reproduces the
    /// paper's Table 7 iteration counts (Dijkstra 45 vs published 48;
    /// A* and Iterative exact), and is exactly representable in binary
    /// floating point so the in-memory (f64) and database-resident (f32)
    /// substrates accumulate identical path costs and expand nodes in the
    /// same order.
    double skew_cheap_cost = 0.03125;
    uint64_t seed = 1993;
  };

  /// Builds the grid. Node id of (row, col) is row * k + col.
  static Result<Graph> Generate(const Options& options);

  static NodeId NodeAt(int k, int row, int col) {
    return static_cast<NodeId>(row * k + col);
  }

  /// (0,0) -> (0,k-1): along one row.
  static GridQuery HorizontalQuery(int k);
  /// (0,0) -> (k/2, k-1): roughly 3/4 of the diagonal hop count.
  static GridQuery SemiDiagonalQuery(int k);
  /// (0,0) -> (k-1,k-1): the longest (diagonally opposite) pair.
  static GridQuery DiagonalQuery(int k);

  /// Number of edges in the minimum-hop path of each query (the path
  /// length L of the cost analysis).
  static int QueryHops(const GridQuery& q, int k);
};

}  // namespace atis::graph
