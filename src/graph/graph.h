// In-memory directed graph with node coordinates and real-valued edge costs.
//
// This is the "main memory" representation of a road map: G = (N, E, C)
// per Section 2 of the paper. Nodes carry planar coordinates because the
// A* estimator functions (Euclidean / Manhattan) are geometric. Undirected
// road segments are stored as two directed edges, matching the paper's
// relational representation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace atis::graph {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Edge {
  NodeId to = kInvalidNode;
  double cost = 0.0;
};

class Graph {
 public:
  Graph() = default;

  /// Adds a node at (x, y); ids are dense and assigned in call order.
  NodeId AddNode(double x, double y);

  /// Adds the directed edge u -> v. InvalidArgument on unknown nodes or
  /// negative cost (all algorithms in this library require C(u,v) >= 0).
  Status AddEdge(NodeId u, NodeId v, double cost);

  /// Adds u -> v and v -> u with the same cost.
  Status AddUndirectedEdge(NodeId u, NodeId v, double cost);

  size_t num_nodes() const { return points_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool HasNode(NodeId u) const {
    return u >= 0 && static_cast<size_t>(u) < points_.size();
  }

  const Point& point(NodeId u) const { return points_[static_cast<size_t>(u)]; }

  /// Out-edges of u (the adjacency list).
  std::span<const Edge> Neighbors(NodeId u) const {
    return adjacency_[static_cast<size_t>(u)];
  }

  size_t OutDegree(NodeId u) const {
    return adjacency_[static_cast<size_t>(u)].size();
  }

  /// Cost of edge u -> v; NotFound when absent.
  Result<double> EdgeCost(NodeId u, NodeId v) const;

  /// Average out-degree (the paper's |A|; 4 for interior grid nodes).
  double AverageDegree() const {
    return points_.empty() ? 0.0
                           : static_cast<double>(num_edges_) /
                                 static_cast<double>(points_.size());
  }

  /// Straight-line (Euclidean) distance between two nodes' coordinates.
  double EuclideanDistance(NodeId u, NodeId v) const;
  /// Manhattan (L1) distance between two nodes' coordinates.
  double ManhattanDistance(NodeId u, NodeId v) const;

  /// Multiplies every edge cost by `factor` (> 0). Used by examples to
  /// model congestion (travel time = distance / speed).
  Status ScaleEdgeCosts(double factor);

  /// Replaces the cost of u -> v. NotFound when the edge is absent.
  Status SetEdgeCost(NodeId u, NodeId v, double cost);

 private:
  std::vector<Point> points_;
  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace atis::graph
