// Deterministic multi-city ("continent") road network generator.
//
// The Minneapolis-like generator (road_map_generator.h) builds one city
// and materialises it as a Graph — fine at 10^3..10^4 nodes, impossible
// at the ~10^6 scale the partitioned store targets: a resident Graph of
// that size is exactly what the streaming build pipeline exists to avoid.
//
// This generator therefore never materialises anything. It lays out
// `num_cities` jittered-lattice city clusters on a coarse grid, assigns
// each street row/column a tier (freeway / arterial / local — faster
// tiers mean cheaper edges), threads a spanning comb through every city
// and a spanning set of freeway corridors between cities (the map is
// strongly connected by construction), and then *emits* nodes and edges
// record-at-a-time through callbacks. All randomness is stateless —
// hash(seed, city, row, col, salt) — so repeated emit passes, and the
// dry pass that counts edges for the ATISG2 header, agree exactly and
// the same seed produces a bit-identical file on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "graph/graph.h"

namespace atis::graph {

struct ContinentOptions {
  uint64_t seed = 1993;
  /// City clusters, laid out on a ceil(sqrt(n))-wide grid. Zero is valid
  /// and yields an empty map.
  int num_cities = 9;
  /// Per-city lattice side; each city holds city_k^2 nodes.
  int city_k = 18;
  /// Relative frequency of each street tier. Any weight may be zero but
  /// the sum must be positive. Faster tiers divide edge cost more.
  double freeway_weight = 1.0;
  double arterial_weight = 3.0;
  double local_weight = 6.0;
  /// Max absolute coordinate jitter applied to each lattice point.
  double jitter = 0.3;
  /// Probability that a local-tier street segment beyond the spanning
  /// comb exists (redundancy / detour richness).
  double local_fill = 0.7;
};

class ContinentGenerator {
 public:
  /// Validates options (positive tier-weight sum, lattice size, and that
  /// the full extent fits the relational store's int16 fixed-point
  /// coordinate budget) without generating anything.
  static Result<ContinentGenerator> Create(const ContinentOptions& options);

  uint64_t num_nodes() const { return num_nodes_; }
  /// Directed edge count, via a dry emit pass (the generator is
  /// deterministic, so the real pass matches exactly).
  uint64_t CountEdges() const;

  /// Streams every node in id order: cb(id, x, y).
  Status EmitNodes(
      const std::function<void(NodeId, double, double)>& cb) const;
  /// Streams every directed edge: cb(u, v, cost). Deterministic order.
  Status EmitEdges(
      const std::function<void(NodeId, NodeId, double)>& cb) const;

  /// Writes the map to `path` as an ATISG2 file with the Hilbert layout,
  /// through the streaming writer — O(1) memory at any scale.
  Status WriteTo(const std::string& path) const;

  /// Materialises a Graph. Test/convenience path for maps that fit in
  /// memory; refuse the temptation at continent scale.
  Result<Graph> Materialize() const;

  /// City-grid geometry, exposed for tests and benchmarks.
  int grid_cols() const { return grid_cols_; }
  double city_slot_span() const;

 private:
  explicit ContinentGenerator(const ContinentOptions& options);

  ContinentOptions options_;
  int grid_cols_ = 0;
  uint64_t num_nodes_ = 0;
};

}  // namespace atis::graph
