// A relation: named schema + heap file + optional primary indexes.
//
// The paper's storage layout is two relations: the edge relation S with a
// random-hash primary index on begin_node, and the node relation R with an
// ISAM primary index on node_id. This class supports both shapes, keeps any
// indexes consistent with tuple mutations, and charges the paper's fixed
// relation-create/delete costs to the I/O meter.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "index/hash_index.h"
#include "index/isam_index.h"
#include "relational/schema.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace atis::relational {

class Relation {
 public:
  /// Creates an empty relation. Charges the create-relation cost I when
  /// `charge_create` is set (temporary relations in the paper's model).
  Relation(std::string name, Schema schema, storage::BufferPool* pool,
           bool charge_create = false);

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  storage::BufferPool* pool() const { return pool_; }

  /// Attaches a static hash index on an integer field. Existing tuples are
  /// indexed immediately.
  Status CreateHashIndex(std::string_view field, size_t num_buckets);

  /// Bulk-builds an ISAM index on an integer field from current contents.
  Status BuildIsamIndex(std::string_view field, double fill_fraction = 1.0);

  Result<storage::RecordId> Insert(const Tuple& tuple);
  Result<Tuple> Get(storage::RecordId rid) const;
  Status Update(storage::RecordId rid, const Tuple& tuple);
  Status Delete(storage::RecordId rid);

  /// Deletes all tuples, releasing pages. Charges D_t when `charge` is set.
  Status Clear(bool charge = true);

  /// All record ids whose indexed field equals `key`, via whichever index
  /// covers `field`. FailedPrecondition if no index on that field.
  Result<std::vector<storage::RecordId>> IndexLookup(std::string_view field,
                                                     int64_t key) const;

  size_t num_tuples() const { return file_.num_records(); }
  /// Block count of the heap file (the paper's B_r / B_s).
  size_t num_blocks() const { return file_.num_pages(); }

  const index::StaticHashIndex* hash_index() const {
    return hash_index_.get();
  }
  const index::IsamIndex* isam_index() const { return isam_index_.get(); }
  int hash_field() const { return hash_field_; }
  int isam_field() const { return isam_field_; }

  /// Forward scan of live tuples.
  class Cursor {
   public:
    Cursor(const Relation* rel) : rel_(rel), it_(rel->file_.Begin()) {}
    bool Valid() const { return it_.Valid(); }
    storage::RecordId rid() const { return it_.rid(); }
    Tuple tuple() const { return rel_->schema_.Unpack(it_.record().data()); }
    void Next() { it_.Next(); }
    /// OK unless the scan ended on a storage error instead of end-of-file.
    const Status& status() const { return it_.status(); }

   private:
    const Relation* rel_;
    storage::HeapFile::Iterator it_;
  };

  Cursor Scan() const { return Cursor(this); }

 private:
  Status ValidateIndexedField(std::string_view field, int* out_index) const;
  int64_t KeyOf(const Tuple& tuple, int field) const {
    return AsInt(tuple[static_cast<size_t>(field)]);
  }

  std::string name_;
  Schema schema_;
  storage::BufferPool* pool_;
  storage::HeapFile file_;
  std::unique_ptr<index::StaticHashIndex> hash_index_;
  std::unique_ptr<index::IsamIndex> isam_index_;
  int hash_field_ = -1;
  int isam_field_ = -1;
};

}  // namespace atis::relational
