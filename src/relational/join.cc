#include "relational/join.h"

#include "obs/trace.h"
#include "relational/external_sort.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace atis::relational {

using storage::CostParams;

std::string_view JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kNestedLoop:
      return "nested-loop";
    case JoinStrategy::kHash:
      return "hash";
    case JoinStrategy::kSortMerge:
      return "sort-merge";
    case JoinStrategy::kPrimaryKey:
      return "primary-key";
    case JoinStrategy::kAuto:
      return "auto";
  }
  return "?";
}

namespace {

/// Block I/Os of an external merge sort of `blocks` blocks: one read+write
/// pass to form runs plus one read+write pass per merge level.
double SortIo(size_t blocks, const CostParams& p) {
  if (blocks <= 1) return 0.0;
  const double passes =
      1.0 + std::ceil(std::log2(static_cast<double>(blocks)));
  return passes * static_cast<double>(blocks) * (p.t_read + p.t_write);
}

}  // namespace

double EstimateJoinCost(JoinStrategy strategy, const JoinStats& s,
                        const CostParams& p) {
  const double b1 = static_cast<double>(s.left_blocks);
  const double b2 = static_cast<double>(s.right_blocks);
  const double b3 = static_cast<double>(s.result_blocks);
  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      // Paper Section 4.3: F = B1*t_read + (B1*B2)*t_read + B3*t_write.
      return b1 * p.t_read + b1 * b2 * p.t_read + b3 * p.t_write;
    case JoinStrategy::kHash:
      // In-memory build of the smaller side + one probe pass.
      return (b1 + b2) * p.t_read + b3 * p.t_write;
    case JoinStrategy::kSortMerge:
      return SortIo(s.left_blocks, p) + SortIo(s.right_blocks, p) +
             (b1 + b2) * p.t_read + b3 * p.t_write;
    case JoinStrategy::kPrimaryKey: {
      if (!s.right_has_index) return std::numeric_limits<double>::infinity();
      // One index descent plus one data-block fetch per outer tuple.
      const double probes = static_cast<double>(s.left_tuples) *
                            static_cast<double>(s.right_index_levels + 1);
      return b1 * p.t_read + probes * p.t_read + b3 * p.t_write;
    }
    case JoinStrategy::kAuto:
      break;
  }
  return std::numeric_limits<double>::infinity();
}

JoinCostEstimate ChooseJoinStrategy(const JoinStats& stats,
                                    const CostParams& params) {
  JoinCostEstimate best{JoinStrategy::kNestedLoop,
                        std::numeric_limits<double>::infinity()};
  for (JoinStrategy s :
       {JoinStrategy::kNestedLoop, JoinStrategy::kHash,
        JoinStrategy::kSortMerge, JoinStrategy::kPrimaryKey}) {
    const double cost = EstimateJoinCost(s, stats, params);
    if (cost < best.cost) best = {s, cost};
  }
  return best;
}

JoinStats ComputeJoinStats(const Relation& left, const Relation& right,
                           const JoinSpec& spec, double join_selectivity) {
  JoinStats s;
  s.left_blocks = left.num_blocks();
  s.right_blocks = right.num_blocks();
  s.left_tuples = left.num_tuples();

  const int rf = right.schema().FieldIndex(spec.right_field);
  s.right_has_index =
      (rf >= 0) && ((right.hash_index() && right.hash_field() == rf) ||
                    (right.isam_index() && right.isam_field() == rf));
  if (s.right_has_index) {
    s.right_index_levels =
        (right.isam_index() && right.isam_field() == rf)
            ? right.isam_index()->num_levels()
            : 1;
  }

  double result_tuples;
  if (join_selectivity > 0.0) {
    result_tuples = join_selectivity *
                    static_cast<double>(left.num_tuples()) *
                    static_cast<double>(right.num_tuples());
  } else {
    result_tuples = static_cast<double>(left.num_tuples());
  }
  const Schema out =
      JoinSchema(left.schema(), right.schema(), left.name(), right.name());
  const size_t bf = std::max<size_t>(1, out.blocking_factor());
  s.result_blocks = static_cast<size_t>(
      std::ceil(result_tuples / static_cast<double>(bf)));
  return s;
}

namespace {

Result<std::unique_ptr<Relation>> MakeResultRelation(
    const Relation& left, const Relation& right, std::string name) {
  Schema out =
      JoinSchema(left.schema(), right.schema(), left.name(), right.name());
  return std::make_unique<Relation>(std::move(name), std::move(out),
                                    left.pool(), /*charge_create=*/true);
}

Tuple Concat(const Tuple& a, const Tuple& b) {
  Tuple t;
  t.reserve(a.size() + b.size());
  t.insert(t.end(), a.begin(), a.end());
  t.insert(t.end(), b.begin(), b.end());
  return t;
}

Result<std::unique_ptr<Relation>> NestedLoopJoin(const Relation& left,
                                                 const Relation& right,
                                                 int lf, int rf,
                                                 std::string name) {
  ATIS_ASSIGN_OR_RETURN(auto out, MakeResultRelation(left, right, name));
  for (Relation::Cursor lc = left.Scan(); lc.Valid(); lc.Next()) {
    const Tuple lt = lc.tuple();
    const int64_t lkey = AsInt(lt[static_cast<size_t>(lf)]);
    for (Relation::Cursor rc = right.Scan(); rc.Valid(); rc.Next()) {
      const Tuple rt = rc.tuple();
      if (AsInt(rt[static_cast<size_t>(rf)]) == lkey) {
        ATIS_RETURN_NOT_OK(out->Insert(Concat(lt, rt)).status());
      }
    }
  }
  return out;
}

Result<std::unique_ptr<Relation>> HashJoinImpl(const Relation& left,
                                               const Relation& right,
                                               int lf, int rf,
                                               std::string name) {
  ATIS_ASSIGN_OR_RETURN(auto out, MakeResultRelation(left, right, name));
  // Build on the inner (right) relation, probe with the outer.
  std::unordered_multimap<int64_t, Tuple> table;
  table.reserve(right.num_tuples());
  for (Relation::Cursor rc = right.Scan(); rc.Valid(); rc.Next()) {
    Tuple rt = rc.tuple();
    const int64_t key = AsInt(rt[static_cast<size_t>(rf)]);
    table.emplace(key, std::move(rt));
  }
  for (Relation::Cursor lc = left.Scan(); lc.Valid(); lc.Next()) {
    const Tuple lt = lc.tuple();
    auto [lo, hi] = table.equal_range(AsInt(lt[static_cast<size_t>(lf)]));
    for (auto it = lo; it != hi; ++it) {
      ATIS_RETURN_NOT_OK(out->Insert(Concat(lt, it->second)).status());
    }
  }
  return out;
}

Result<std::unique_ptr<Relation>> SortMergeJoinImpl(
    const Relation& left, const Relation& right, int lf, int rf,
    std::string name, const CostParams& params) {
  (void)params;
  ATIS_ASSIGN_OR_RETURN(auto out, MakeResultRelation(left, right, name));
  // Real external sorts: every run-formation and merge pass is metered
  // block I/O (see relational/external_sort.h).
  ATIS_ASSIGN_OR_RETURN(
      auto sorted_left,
      ExternalSort(left, left.schema().field(static_cast<size_t>(lf)).name,
                   name + ".sortL"));
  ATIS_ASSIGN_OR_RETURN(
      auto sorted_right,
      ExternalSort(right,
                   right.schema().field(static_cast<size_t>(rf)).name,
                   name + ".sortR"));

  {
    // Scoped so the cursors' page pins are released before the sorted
    // temporaries are dropped below.
    Relation::Cursor lc = sorted_left->Scan();
    Relation::Cursor rc = sorted_right->Scan();
  auto lkey = [&] { return AsInt(lc.tuple()[static_cast<size_t>(lf)]); };
  auto rkey = [&] { return AsInt(rc.tuple()[static_cast<size_t>(rf)]); };
  while (lc.Valid() && rc.Valid()) {
    if (lkey() < rkey()) {
      lc.Next();
    } else if (lkey() > rkey()) {
      rc.Next();
    } else {
      // Buffer the right-side group for this key, then cross it with
      // every matching left tuple.
      const int64_t key = lkey();
      std::vector<Tuple> group;
      while (rc.Valid() && rkey() == key) {
        group.push_back(rc.tuple());
        rc.Next();
      }
      while (lc.Valid() && lkey() == key) {
        const Tuple lt = lc.tuple();
        for (const Tuple& rt : group) {
          ATIS_RETURN_NOT_OK(out->Insert(Concat(lt, rt)).status());
        }
        lc.Next();
      }
    }
  }
  }
  ATIS_RETURN_NOT_OK(sorted_left->Clear(/*charge=*/true));
  ATIS_RETURN_NOT_OK(sorted_right->Clear(/*charge=*/true));
  return out;
}

Result<std::unique_ptr<Relation>> PrimaryKeyJoinImpl(const Relation& left,
                                                     const Relation& right,
                                                     int lf,
                                                     std::string_view rfield,
                                                     std::string name) {
  ATIS_ASSIGN_OR_RETURN(auto out, MakeResultRelation(left, right, name));
  for (Relation::Cursor lc = left.Scan(); lc.Valid(); lc.Next()) {
    const Tuple lt = lc.tuple();
    const int64_t key = AsInt(lt[static_cast<size_t>(lf)]);
    ATIS_ASSIGN_OR_RETURN(auto matches, SelectIndex(right, rfield, key));
    for (const MatchedTuple& m : matches) {
      ATIS_RETURN_NOT_OK(out->Insert(Concat(lt, m.tuple)).status());
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<Relation>> Join(const Relation& left,
                                       const Relation& right,
                                       const JoinSpec& spec,
                                       JoinStrategy strategy,
                                       const CostParams& params,
                                       std::string result_name) {
  const int lf = left.schema().FieldIndex(spec.left_field);
  const int rf = right.schema().FieldIndex(spec.right_field);
  if (lf < 0 || rf < 0) {
    return Status::InvalidArgument("join field not found");
  }
  if (strategy == JoinStrategy::kAuto) {
    const JoinStats stats = ComputeJoinStats(left, right, spec);
    strategy = ChooseJoinStrategy(stats, params).strategy;
  }
  obs::ScopedSpan span("join", "operator");
  span.Tag("strategy", std::string(JoinStrategyName(strategy)));
  span.Tag("left", left.name());
  span.Tag("right", right.name());
  span.Tag("left_tuples", static_cast<uint64_t>(left.num_tuples()));
  span.Tag("right_tuples", static_cast<uint64_t>(right.num_tuples()));
  auto result = [&]() -> Result<std::unique_ptr<Relation>> {
    switch (strategy) {
      case JoinStrategy::kNestedLoop:
        return NestedLoopJoin(left, right, lf, rf, std::move(result_name));
      case JoinStrategy::kHash:
        return HashJoinImpl(left, right, lf, rf, std::move(result_name));
      case JoinStrategy::kSortMerge:
        return SortMergeJoinImpl(left, right, lf, rf,
                                 std::move(result_name), params);
      case JoinStrategy::kPrimaryKey:
        return PrimaryKeyJoinImpl(left, right, lf, spec.right_field,
                                  std::move(result_name));
      case JoinStrategy::kAuto:
        break;
    }
    return Status::Internal("unreachable join strategy");
  }();
  if (result.ok()) {
    span.Tag("result_tuples", static_cast<uint64_t>((*result)->num_tuples()));
  }
  return result;
}

}  // namespace atis::relational
