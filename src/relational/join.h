// Equality-join operators and the join-strategy chooser.
//
// The paper's optimizer simulation "was able to choose between several
// Select and Join strategies": (1) hash join, (2) nested-loop join,
// (3) sort-merge join, (4) primary-key (index) join. All four are
// implemented here over the metered storage engine; ChooseJoinStrategy is
// the cost function F(B1, B2, B3) of Section 4.
#pragma once

#include <memory>
#include <string>

#include "relational/operators.h"
#include "relational/relation.h"
#include "storage/io_meter.h"

namespace atis::relational {

enum class JoinStrategy {
  kNestedLoop,
  kHash,
  kSortMerge,
  kPrimaryKey,  ///< index lookup on the inner relation's join field
  kAuto,        ///< let ChooseJoinStrategy pick
};

std::string_view JoinStrategyName(JoinStrategy s);

/// Equi-join condition: left.field == right.field (both integer-typed).
struct JoinSpec {
  std::string left_field;
  std::string right_field;
};

/// Inputs to the cost function F. Block counts are the paper's B1 (outer),
/// B2 (inner), B3 (estimated result).
struct JoinStats {
  size_t left_blocks = 0;
  size_t right_blocks = 0;
  size_t result_blocks = 0;
  size_t left_tuples = 0;
  bool right_has_index = false;
  size_t right_index_levels = 0;  ///< I_l for ISAM; 1 for hash
};

struct JoinCostEstimate {
  JoinStrategy strategy;
  double cost;  ///< in paper cost units
};

/// Cost of one strategy under the block-I/O model. PrimaryKey returns +inf
/// when the inner relation has no index on the join field.
double EstimateJoinCost(JoinStrategy strategy, const JoinStats& stats,
                        const storage::CostParams& params);

/// The paper's F(B1, B2, B3): cheapest viable strategy.
JoinCostEstimate ChooseJoinStrategy(const JoinStats& stats,
                                    const storage::CostParams& params);

/// Executes `left JOIN right ON spec` and materializes the result into a new
/// temporary relation (charged as a relation create). With kAuto the
/// strategy is chosen by ChooseJoinStrategy from actual relation stats.
Result<std::unique_ptr<Relation>> Join(const Relation& left,
                                       const Relation& right,
                                       const JoinSpec& spec,
                                       JoinStrategy strategy,
                                       const storage::CostParams& params,
                                       std::string result_name);

/// Derives JoinStats from two concrete relations and a join spec, estimating
/// result size from join selectivity JS = |result| / (|left| * |right|).
/// `join_selectivity` <= 0 means "assume one match per left tuple".
JoinStats ComputeJoinStats(const Relation& left, const Relation& right,
                           const JoinSpec& spec,
                           double join_selectivity = -1.0);

}  // namespace atis::relational
