#include "relational/external_sort.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace atis::relational {

namespace {

/// Streaming cursor over one sorted run.
class RunCursor {
 public:
  explicit RunCursor(Relation* run, int key_field)
      : cursor_(run->Scan()), key_field_(key_field) {}

  bool Valid() const { return cursor_.Valid(); }
  int64_t key() const {
    return AsInt(cursor_.tuple()[static_cast<size_t>(key_field_)]);
  }
  Tuple Take() {
    Tuple t = cursor_.tuple();
    cursor_.Next();
    return t;
  }

 private:
  Relation::Cursor cursor_;
  int key_field_;
};

}  // namespace

Result<std::unique_ptr<Relation>> ExternalSort(
    const Relation& input, std::string_view key_field,
    std::string result_name, const SortOptions& options,
    SortMetrics* metrics) {
  const int key = input.schema().FieldIndex(key_field);
  if (key < 0) {
    return Status::InvalidArgument("no sort key field '" +
                                   std::string(key_field) + "'");
  }
  if (!IsIntegerType(input.schema().field(static_cast<size_t>(key)).type)) {
    return Status::InvalidArgument("sort key must be integer-typed");
  }
  if (options.memory_frames < 3) {
    return Status::InvalidArgument(
        "external sort needs at least 3 memory frames");
  }
  const size_t run_capacity = std::max<size_t>(
      1, options.memory_frames * input.schema().blocking_factor());

  SortMetrics local;
  // -- Pass 0: run formation.
  std::vector<std::unique_ptr<Relation>> runs;
  std::vector<std::pair<int64_t, Tuple>> buffer;
  buffer.reserve(run_capacity);
  auto flush_run = [&]() -> Status {
    if (buffer.empty()) return Status::OK();
    std::stable_sort(
        buffer.begin(), buffer.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    auto run = std::make_unique<Relation>(
        result_name + ".run" + std::to_string(runs.size()),
        input.schema(), input.pool(), /*charge_create=*/true);
    for (auto& [k, t] : buffer) {
      (void)k;
      ATIS_RETURN_NOT_OK(run->Insert(t).status());
    }
    buffer.clear();
    runs.push_back(std::move(run));
    return Status::OK();
  };
  for (Relation::Cursor c = input.Scan(); c.Valid(); c.Next()) {
    Tuple t = c.tuple();
    const int64_t k = AsInt(t[static_cast<size_t>(key)]);
    buffer.emplace_back(k, std::move(t));
    if (buffer.size() >= run_capacity) {
      ATIS_RETURN_NOT_OK(flush_run());
    }
  }
  ATIS_RETURN_NOT_OK(flush_run());
  local.initial_runs = runs.size();

  if (runs.empty()) {
    // Empty input: an empty (but valid) result.
    auto out = std::make_unique<Relation>(std::move(result_name),
                                          input.schema(), input.pool(),
                                          /*charge_create=*/true);
    if (metrics != nullptr) *metrics = local;
    return out;
  }

  // -- Merge passes: fan-in = frames - 1 (one output frame).
  const size_t fan_in = options.memory_frames - 1;
  while (runs.size() > 1) {
    ++local.merge_passes;
    std::vector<std::unique_ptr<Relation>> next;
    for (size_t group = 0; group < runs.size(); group += fan_in) {
      const size_t end = std::min(group + fan_in, runs.size());
      auto merged = std::make_unique<Relation>(
          result_name + ".merge" + std::to_string(local.merge_passes) +
              "." + std::to_string(next.size()),
          input.schema(), input.pool(), /*charge_create=*/true);
      std::vector<RunCursor> cursors;
      cursors.reserve(end - group);
      for (size_t i = group; i < end; ++i) {
        cursors.emplace_back(runs[i].get(), key);
      }
      while (true) {
        // Lowest key; ties prefer the earliest run (stability).
        std::optional<size_t> pick;
        for (size_t i = 0; i < cursors.size(); ++i) {
          if (!cursors[i].Valid()) continue;
          if (!pick || cursors[i].key() < cursors[*pick].key()) pick = i;
        }
        if (!pick) break;
        ATIS_RETURN_NOT_OK(merged->Insert(cursors[*pick].Take()).status());
      }
      for (size_t i = group; i < end; ++i) {
        ATIS_RETURN_NOT_OK(runs[i]->Clear(/*charge=*/true));
      }
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }
  if (metrics != nullptr) *metrics = local;
  return std::move(runs.front());
}

}  // namespace atis::relational
