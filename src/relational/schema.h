// Schemas, typed values, and fixed-width tuple (de)serialisation.
//
// All relations in this system have fixed-size tuples of numeric fields
// (node ids, coordinates, costs, status flags). Field widths are explicit so
// the paper's tuple sizes — T_s = 32 bytes for the edge relation S and
// T_r = 16 bytes for the node relation R (Table 4A) — and hence its blocking
// factors Bf_s = 128 and Bf_r = 256 are reproduced exactly.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace atis::relational {

enum class FieldType : uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
};

/// Width in bytes of a serialized field.
size_t FieldWidth(FieldType type);
bool IsIntegerType(FieldType type);
std::string_view FieldTypeName(FieldType type);

/// A runtime value: integers of any width are held as int64, floats of any
/// width as double. Narrowing happens at pack time.
using Value = std::variant<int64_t, double>;

/// Tuple = one value per schema field.
using Tuple = std::vector<Value>;

/// Reads a value as int64 (floors doubles).
int64_t AsInt(const Value& v);
/// Reads a value as double.
double AsDouble(const Value& v);

struct Field {
  std::string name;
  FieldType type;
};

class Schema {
 public:
  Schema() = default;
  /// `tuple_size_override`, if nonzero, pads each serialized tuple to that
  /// many bytes (must be >= the packed field size). This is how R's
  /// 16-byte and S's 32-byte tuples are declared.
  explicit Schema(std::vector<Field> fields, size_t tuple_size_override = 0);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  /// Index of the named field, or -1.
  int FieldIndex(std::string_view name) const;
  /// Serialized byte offset of field i.
  size_t FieldOffset(size_t i) const { return offsets_[i]; }
  /// Serialized tuple size in bytes (including any override padding).
  size_t tuple_size() const { return tuple_size_; }
  /// Tuples per 4096-byte block (the paper's blocking factor Bf).
  size_t blocking_factor() const;

  /// Serializes `tuple` into `dest` (must have tuple_size() bytes).
  /// InvalidArgument on arity mismatch; integer fields narrow with
  /// wrap-around semantics (caller-validated ranges in this system).
  Status Pack(const Tuple& tuple, uint8_t* dest) const;

  /// Deserializes a tuple from `src` (tuple_size() bytes).
  Tuple Unpack(const uint8_t* src) const;

  bool SameLayout(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::vector<size_t> offsets_;
  size_t tuple_size_ = 0;
};

/// Concatenation of two schemas, used for join results. Field names are
/// prefixed ("left.x", "right.y") to stay unambiguous.
Schema JoinSchema(const Schema& left, const Schema& right,
                  std::string_view left_prefix, std::string_view right_prefix);

}  // namespace atis::relational
