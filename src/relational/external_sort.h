// External merge sort over relations.
//
// The optimizer's sort-merge strategy (Section 4's F function) assumes a
// real external sort: run formation over a bounded set of buffer frames,
// then multiway merging, with every pass reading and writing each block.
// This operator performs exactly that against the metered storage engine,
// so sort costs are *measured*, not modelled.
#pragma once

#include <memory>
#include <string>

#include "relational/relation.h"

namespace atis::relational {

struct SortOptions {
  /// Frames of memory available for run formation and merging (>= 3:
  /// two inputs + one output during merge). The paper-scale default keeps
  /// multi-pass behaviour observable on small relations.
  size_t memory_frames = 4;
};

struct SortMetrics {
  size_t initial_runs = 0;
  size_t merge_passes = 0;
};

/// Sorts `input` by the integer field `key_field` (ascending, stable for
/// equal keys) into a fresh temporary relation (charged as a relation
/// create). The input relation is left untouched.
Result<std::unique_ptr<Relation>> ExternalSort(
    const Relation& input, std::string_view key_field,
    std::string result_name, const SortOptions& options = {},
    SortMetrics* metrics = nullptr);

}  // namespace atis::relational
