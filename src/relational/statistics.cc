#include "relational/statistics.h"

#include <algorithm>
#include <unordered_set>

namespace atis::relational {

Result<FieldStats> AnalyzeField(const Relation& rel,
                                std::string_view field) {
  const int idx = rel.schema().FieldIndex(field);
  if (idx < 0) {
    return Status::InvalidArgument("no field '" + std::string(field) +
                                   "' in relation " + rel.name());
  }
  if (!IsIntegerType(rel.schema().field(static_cast<size_t>(idx)).type)) {
    return Status::InvalidArgument("ANALYZE supports integer fields only");
  }
  FieldStats stats;
  std::unordered_set<int64_t> distinct;
  for (Relation::Cursor c = rel.Scan(); c.Valid(); c.Next()) {
    const int64_t v = AsInt(c.tuple()[static_cast<size_t>(idx)]);
    if (stats.num_tuples == 0) {
      stats.min_value = stats.max_value = v;
    } else {
      stats.min_value = std::min(stats.min_value, v);
      stats.max_value = std::max(stats.max_value, v);
    }
    ++stats.num_tuples;
    distinct.insert(v);
  }
  stats.num_distinct = distinct.size();
  return stats;
}

double EstimateJoinSelectivity(const FieldStats& left,
                               const FieldStats& right) {
  if (left.num_tuples == 0 || right.num_tuples == 0) return 0.0;
  const size_t d = std::max(left.num_distinct, right.num_distinct);
  return d == 0 ? 0.0 : 1.0 / static_cast<double>(d);
}

Result<JoinStats> ComputeJoinStatsAnalyzed(const Relation& left,
                                           const Relation& right,
                                           const JoinSpec& spec) {
  ATIS_ASSIGN_OR_RETURN(const FieldStats ls,
                        AnalyzeField(left, spec.left_field));
  ATIS_ASSIGN_OR_RETURN(const FieldStats rs,
                        AnalyzeField(right, spec.right_field));
  return ComputeJoinStats(left, right, spec,
                          EstimateJoinSelectivity(ls, rs));
}

}  // namespace atis::relational
