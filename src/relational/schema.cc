#include "relational/schema.h"

#include <cassert>
#include <cstring>

#include "storage/page.h"

namespace atis::relational {

size_t FieldWidth(FieldType type) {
  switch (type) {
    case FieldType::kInt8:
      return 1;
    case FieldType::kInt16:
      return 2;
    case FieldType::kInt32:
      return 4;
    case FieldType::kInt64:
      return 8;
    case FieldType::kFloat:
      return 4;
    case FieldType::kDouble:
      return 8;
  }
  return 0;
}

bool IsIntegerType(FieldType type) {
  switch (type) {
    case FieldType::kInt8:
    case FieldType::kInt16:
    case FieldType::kInt32:
    case FieldType::kInt64:
      return true;
    case FieldType::kFloat:
    case FieldType::kDouble:
      return false;
  }
  return false;
}

std::string_view FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt8:
      return "int8";
    case FieldType::kInt16:
      return "int16";
    case FieldType::kInt32:
      return "int32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kFloat:
      return "float";
    case FieldType::kDouble:
      return "double";
  }
  return "?";
}

int64_t AsInt(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return *i;
  return static_cast<int64_t>(std::get<double>(v));
}

double AsDouble(const Value& v) {
  if (const double* d = std::get_if<double>(&v)) return *d;
  return static_cast<double>(std::get<int64_t>(v));
}

Schema::Schema(std::vector<Field> fields, size_t tuple_size_override)
    : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  size_t off = 0;
  for (const Field& f : fields_) {
    offsets_.push_back(off);
    off += FieldWidth(f.type);
  }
  tuple_size_ = off;
  if (tuple_size_override != 0) {
    assert(tuple_size_override >= off &&
           "tuple size override smaller than packed fields");
    tuple_size_ = tuple_size_override;
  }
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::blocking_factor() const {
  return tuple_size_ == 0 ? 0 : storage::kPageSize / tuple_size_;
}

namespace {

template <typename T>
void StoreAs(uint8_t* dest, T value) {
  std::memcpy(dest, &value, sizeof(T));
}

template <typename T>
T LoadAs(const uint8_t* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

}  // namespace

Status Schema::Pack(const Tuple& tuple, uint8_t* dest) const {
  if (tuple.size() != fields_.size()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  std::memset(dest, 0, tuple_size_);
  for (size_t i = 0; i < fields_.size(); ++i) {
    uint8_t* at = dest + offsets_[i];
    switch (fields_[i].type) {
      case FieldType::kInt8:
        StoreAs<int8_t>(at, static_cast<int8_t>(AsInt(tuple[i])));
        break;
      case FieldType::kInt16:
        StoreAs<int16_t>(at, static_cast<int16_t>(AsInt(tuple[i])));
        break;
      case FieldType::kInt32:
        StoreAs<int32_t>(at, static_cast<int32_t>(AsInt(tuple[i])));
        break;
      case FieldType::kInt64:
        StoreAs<int64_t>(at, AsInt(tuple[i]));
        break;
      case FieldType::kFloat:
        StoreAs<float>(at, static_cast<float>(AsDouble(tuple[i])));
        break;
      case FieldType::kDouble:
        StoreAs<double>(at, AsDouble(tuple[i]));
        break;
    }
  }
  return Status::OK();
}

Tuple Schema::Unpack(const uint8_t* src) const {
  Tuple tuple;
  tuple.reserve(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) {
    const uint8_t* at = src + offsets_[i];
    switch (fields_[i].type) {
      case FieldType::kInt8:
        tuple.emplace_back(static_cast<int64_t>(LoadAs<int8_t>(at)));
        break;
      case FieldType::kInt16:
        tuple.emplace_back(static_cast<int64_t>(LoadAs<int16_t>(at)));
        break;
      case FieldType::kInt32:
        tuple.emplace_back(static_cast<int64_t>(LoadAs<int32_t>(at)));
        break;
      case FieldType::kInt64:
        tuple.emplace_back(LoadAs<int64_t>(at));
        break;
      case FieldType::kFloat:
        tuple.emplace_back(static_cast<double>(LoadAs<float>(at)));
        break;
      case FieldType::kDouble:
        tuple.emplace_back(LoadAs<double>(at));
        break;
    }
  }
  return tuple;
}

bool Schema::SameLayout(const Schema& other) const {
  if (tuple_size_ != other.tuple_size_ ||
      fields_.size() != other.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type != other.fields_[i].type) return false;
  }
  return true;
}

Schema JoinSchema(const Schema& left, const Schema& right,
                  std::string_view left_prefix,
                  std::string_view right_prefix) {
  std::vector<Field> fields;
  fields.reserve(left.num_fields() + right.num_fields());
  for (size_t i = 0; i < left.num_fields(); ++i) {
    fields.push_back({std::string(left_prefix) + "." + left.field(i).name,
                      left.field(i).type});
  }
  for (size_t i = 0; i < right.num_fields(); ++i) {
    fields.push_back({std::string(right_prefix) + "." + right.field(i).name,
                      right.field(i).type});
  }
  return Schema(std::move(fields));
}

}  // namespace atis::relational
