#include "relational/operators.h"

#include "obs/trace.h"

namespace atis::relational {

Result<std::vector<MatchedTuple>> SelectScan(const Relation& rel,
                                             const Predicate& pred) {
  obs::ScopedSpan span("select-scan", "operator");
  span.Tag("relation", rel.name());
  std::vector<MatchedTuple> out;
  Relation::Cursor c = rel.Scan();
  for (; c.Valid(); c.Next()) {
    Tuple t = c.tuple();
    if (!pred || pred(t)) {
      out.push_back({c.rid(), std::move(t)});
    }
  }
  // A scan cut short by a storage fault must fail the statement, not
  // return a silently-partial result set.
  ATIS_RETURN_NOT_OK(c.status());
  span.Tag("matched", static_cast<uint64_t>(out.size()));
  return out;
}

Result<std::vector<MatchedTuple>> SelectIndex(const Relation& rel,
                                              std::string_view field,
                                              int64_t key,
                                              const Predicate& pred) {
  obs::ScopedSpan span("select-index", "operator");
  span.Tag("relation", rel.name());
  ATIS_ASSIGN_OR_RETURN(auto rids, rel.IndexLookup(field, key));
  std::vector<MatchedTuple> out;
  out.reserve(rids.size());
  for (const storage::RecordId rid : rids) {
    ATIS_ASSIGN_OR_RETURN(Tuple t, rel.Get(rid));
    if (!pred || pred(t)) {
      out.push_back({rid, std::move(t)});
    }
  }
  span.Tag("matched", static_cast<uint64_t>(out.size()));
  return out;
}

Result<size_t> Replace(Relation* rel, const Predicate& pred,
                       const Updater& update) {
  obs::ScopedSpan span("replace", "operator");
  span.Tag("relation", rel->name());
  // Two-phase: match first, then write. A single-pass scan-and-update is
  // unsound if updates relocate tuples the scan has not reached yet.
  std::vector<MatchedTuple> matches;
  for (Relation::Cursor c = rel->Scan(); c.Valid(); c.Next()) {
    Tuple t = c.tuple();
    if (!pred || pred(t)) {
      matches.push_back({c.rid(), std::move(t)});
    }
  }
  for (MatchedTuple& m : matches) {
    update(&m.tuple);
    ATIS_RETURN_NOT_OK(rel->Update(m.rid, m.tuple));
  }
  span.Tag("replaced", static_cast<uint64_t>(matches.size()));
  return matches.size();
}

Status Append(Relation* rel, const Tuple& tuple) {
  obs::ScopedSpan span("append", "operator");
  span.Tag("relation", rel->name());
  return rel->Insert(tuple).status();
}

Result<size_t> DeleteWhere(Relation* rel, const Predicate& pred) {
  obs::ScopedSpan span("delete", "operator");
  span.Tag("relation", rel->name());
  std::vector<storage::RecordId> victims;
  for (Relation::Cursor c = rel->Scan(); c.Valid(); c.Next()) {
    if (!pred || pred(c.tuple())) victims.push_back(c.rid());
  }
  for (const storage::RecordId rid : victims) {
    ATIS_RETURN_NOT_OK(rel->Delete(rid));
  }
  span.Tag("deleted", static_cast<uint64_t>(victims.size()));
  return victims.size();
}

Result<size_t> CountWhere(const Relation& rel, const Predicate& pred) {
  size_t n = 0;
  for (Relation::Cursor c = rel.Scan(); c.Valid(); c.Next()) {
    if (!pred || pred(c.tuple())) ++n;
  }
  return n;
}

Result<std::optional<MatchedTuple>> MinBy(
    const Relation& rel, const Predicate& pred,
    const std::function<double(const Tuple&)>& key) {
  std::optional<MatchedTuple> best;
  double best_key = 0.0;
  for (Relation::Cursor c = rel.Scan(); c.Valid(); c.Next()) {
    Tuple t = c.tuple();
    if (pred && !pred(t)) continue;
    const double k = key(t);
    if (!best || k < best_key) {
      best = MatchedTuple{c.rid(), std::move(t)};
      best_key = k;
    }
  }
  return best;
}

}  // namespace atis::relational
