#include "relational/relation.h"

#include <algorithm>
#include <vector>

namespace atis::relational {

using storage::RecordId;

Relation::Relation(std::string name, Schema schema,
                   storage::BufferPool* pool, bool charge_create)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool),
      file_(pool) {
  if (charge_create) {
    pool_->disk()->meter().RecordRelationCreate();
  }
}

Status Relation::ValidateIndexedField(std::string_view field,
                                      int* out_index) const {
  const int idx = schema_.FieldIndex(field);
  if (idx < 0) {
    return Status::InvalidArgument("no field named '" + std::string(field) +
                                   "' in relation " + name_);
  }
  if (!IsIntegerType(schema_.field(static_cast<size_t>(idx)).type)) {
    return Status::InvalidArgument("index key field must be integer-typed");
  }
  *out_index = idx;
  return Status::OK();
}

Status Relation::CreateHashIndex(std::string_view field, size_t num_buckets) {
  if (hash_index_) return Status::FailedPrecondition("hash index exists");
  int idx = -1;
  ATIS_RETURN_NOT_OK(ValidateIndexedField(field, &idx));
  hash_index_ = std::make_unique<index::StaticHashIndex>(pool_, num_buckets);
  hash_field_ = idx;
  for (Cursor c = Scan(); c.Valid(); c.Next()) {
    ATIS_RETURN_NOT_OK(hash_index_->Insert(KeyOf(c.tuple(), idx), c.rid()));
  }
  return Status::OK();
}

Status Relation::BuildIsamIndex(std::string_view field,
                                double fill_fraction) {
  if (isam_index_) return Status::FailedPrecondition("ISAM index exists");
  int idx = -1;
  ATIS_RETURN_NOT_OK(ValidateIndexedField(field, &idx));
  std::vector<index::IsamIndex::Entry> entries;
  entries.reserve(num_tuples());
  for (Cursor c = Scan(); c.Valid(); c.Next()) {
    entries.push_back({KeyOf(c.tuple(), idx), c.rid()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  auto isam = std::make_unique<index::IsamIndex>(pool_);
  ATIS_RETURN_NOT_OK(isam->Build(std::move(entries), fill_fraction));
  isam_index_ = std::move(isam);
  isam_field_ = idx;
  return Status::OK();
}

Result<RecordId> Relation::Insert(const Tuple& tuple) {
  std::vector<uint8_t> buf(schema_.tuple_size());
  ATIS_RETURN_NOT_OK(schema_.Pack(tuple, buf.data()));
  ATIS_ASSIGN_OR_RETURN(RecordId rid, file_.Insert(buf));
  if (hash_index_) {
    ATIS_RETURN_NOT_OK(hash_index_->Insert(KeyOf(tuple, hash_field_), rid));
  }
  if (isam_index_) {
    ATIS_RETURN_NOT_OK(isam_index_->Insert(KeyOf(tuple, isam_field_), rid));
  }
  return rid;
}

Result<Tuple> Relation::Get(RecordId rid) const {
  ATIS_ASSIGN_OR_RETURN(auto bytes, file_.Get(rid));
  if (bytes.size() != schema_.tuple_size()) {
    return Status::Corruption("tuple size mismatch in relation " + name_);
  }
  return schema_.Unpack(bytes.data());
}

Status Relation::Update(RecordId rid, const Tuple& tuple) {
  // Keep indexes consistent if a key field changes.
  Tuple old;
  if (hash_index_ || isam_index_) {
    ATIS_ASSIGN_OR_RETURN(old, Get(rid));
  }
  std::vector<uint8_t> buf(schema_.tuple_size());
  ATIS_RETURN_NOT_OK(schema_.Pack(tuple, buf.data()));
  ATIS_RETURN_NOT_OK(file_.Update(rid, buf));
  if (hash_index_) {
    const int64_t old_key = KeyOf(old, hash_field_);
    const int64_t new_key = KeyOf(tuple, hash_field_);
    if (old_key != new_key) {
      ATIS_RETURN_NOT_OK(hash_index_->Erase(old_key, rid));
      ATIS_RETURN_NOT_OK(hash_index_->Insert(new_key, rid));
    }
  }
  if (isam_index_) {
    const int64_t old_key = KeyOf(old, isam_field_);
    const int64_t new_key = KeyOf(tuple, isam_field_);
    if (old_key != new_key) {
      ATIS_RETURN_NOT_OK(isam_index_->Erase(old_key, rid));
      ATIS_RETURN_NOT_OK(isam_index_->Insert(new_key, rid));
    }
  }
  return Status::OK();
}

Status Relation::Delete(RecordId rid) {
  Tuple old;
  if (hash_index_ || isam_index_) {
    ATIS_ASSIGN_OR_RETURN(old, Get(rid));
  }
  ATIS_RETURN_NOT_OK(file_.Delete(rid));
  if (hash_index_) {
    ATIS_RETURN_NOT_OK(hash_index_->Erase(KeyOf(old, hash_field_), rid));
  }
  if (isam_index_) {
    ATIS_RETURN_NOT_OK(isam_index_->Erase(KeyOf(old, isam_field_), rid));
  }
  return Status::OK();
}

Status Relation::Clear(bool charge) {
  ATIS_RETURN_NOT_OK(file_.Clear());
  // Indexes are rebuilt from scratch if needed after a clear.
  hash_index_.reset();
  isam_index_.reset();
  hash_field_ = -1;
  isam_field_ = -1;
  if (charge) {
    pool_->disk()->meter().RecordRelationDelete();
  }
  return Status::OK();
}

Result<std::vector<RecordId>> Relation::IndexLookup(std::string_view field,
                                                    int64_t key) const {
  const int idx = schema_.FieldIndex(field);
  if (idx >= 0 && idx == hash_field_ && hash_index_) {
    return hash_index_->Lookup(key);
  }
  if (idx >= 0 && idx == isam_field_ && isam_index_) {
    return isam_index_->LookupAll(key);
  }
  return Status::FailedPrecondition("no index on field '" +
                                    std::string(field) + "' of relation " +
                                    name_);
}

}  // namespace atis::relational
