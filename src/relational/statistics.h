// Relation statistics and selectivity estimation — the inputs the paper's
// optimizer simulation needs for its join-selectivity terms (JS = |JOIN| /
// (|S| * |R|), Table 1). ANALYZE-style scans gather per-field summaries;
// the System R uniformity assumption turns them into selectivities.
#pragma once

#include <cstdint>

#include "relational/join.h"
#include "relational/relation.h"

namespace atis::relational {

/// Summary of one integer field of a relation.
struct FieldStats {
  size_t num_tuples = 0;
  size_t num_distinct = 0;
  int64_t min_value = 0;
  int64_t max_value = 0;

  /// Average tuples per key (the paper's |A| when applied to
  /// S.begin_node).
  double AvgTuplesPerKey() const {
    return num_distinct == 0
               ? 0.0
               : static_cast<double>(num_tuples) /
                     static_cast<double>(num_distinct);
  }
};

/// Full-scan ANALYZE of one integer field. InvalidArgument for unknown or
/// non-integer fields.
Result<FieldStats> AnalyzeField(const Relation& rel,
                                std::string_view field);

/// System R equi-join selectivity: 1 / max(distinct(left), distinct(right));
/// zero when either side is empty.
double EstimateJoinSelectivity(const FieldStats& left,
                               const FieldStats& right);

/// ComputeJoinStats with an ANALYZE-derived selectivity instead of the
/// one-match-per-left-tuple default.
Result<JoinStats> ComputeJoinStatsAnalyzed(const Relation& left,
                                           const Relation& right,
                                           const JoinSpec& spec);

}  // namespace atis::relational
