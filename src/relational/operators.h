// QUEL-style statement operators over relations.
//
// The paper implements its algorithms as EQUEL programs whose statements are
// RETRIEVE (select), REPLACE, APPEND, and DELETE. These free functions are
// the corresponding operators; each is one "statement". In the paper's
// statement-at-a-time execution model the caller evicts the buffer pool
// between statements (see ExecutionContext) so every statement's block
// accesses are charged, exactly as the cost model assumes.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "relational/relation.h"

namespace atis::relational {

using Predicate = std::function<bool(const Tuple&)>;
using Updater = std::function<void(Tuple*)>;

struct MatchedTuple {
  storage::RecordId rid;
  Tuple tuple;
};

/// RETRIEVE via full scan: all tuples satisfying `pred` (nullptr = all).
Result<std::vector<MatchedTuple>> SelectScan(const Relation& rel,
                                             const Predicate& pred);

/// RETRIEVE via index: tuples with `field` == `key`, optionally filtered.
Result<std::vector<MatchedTuple>> SelectIndex(const Relation& rel,
                                              std::string_view field,
                                              int64_t key,
                                              const Predicate& pred = {});

/// REPLACE: scans, applies `update` to each tuple satisfying `pred`, and
/// writes it back. Returns the number of tuples replaced.
Result<size_t> Replace(Relation* rel, const Predicate& pred,
                       const Updater& update);

/// APPEND: inserts one tuple.
Status Append(Relation* rel, const Tuple& tuple);

/// DELETE: removes all tuples satisfying `pred`; returns how many.
Result<size_t> DeleteWhere(Relation* rel, const Predicate& pred);

/// Aggregate: COUNT of tuples satisfying `pred` (scan).
Result<size_t> CountWhere(const Relation& rel, const Predicate& pred);

/// Aggregate-select: the tuple minimizing `key` among those satisfying
/// `pred`; nullopt when none match. Ties break toward the first in scan
/// order (deterministic). This implements "select u from frontierSet with
/// minimum C(s,u) [+ f(u,d)]".
Result<std::optional<MatchedTuple>> MinBy(
    const Relation& rel, const Predicate& pred,
    const std::function<double(const Tuple&)>& key);

/// Statement-at-a-time execution context: wraps the buffer pool used by a
/// sequence of statements and evicts it at statement boundaries when
/// `statement_at_a_time` is on (the paper's INGRES single-user model).
class ExecutionContext {
 public:
  ExecutionContext(storage::BufferPool* pool, bool statement_at_a_time = true)
      : pool_(pool), statement_at_a_time_(statement_at_a_time) {}

  /// Call after each logical statement.
  Status EndStatement() {
    if (statement_at_a_time_) return pool_->EvictAll();
    return Status::OK();
  }

  storage::BufferPool* pool() const { return pool_; }
  bool statement_at_a_time() const { return statement_at_a_time_; }

 private:
  storage::BufferPool* pool_;
  bool statement_at_a_time_;
};

}  // namespace atis::relational
