#include "core/incremental.h"

#include <limits>
#include <queue>
#include <vector>

#include "core/advanced_search.h"

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using Item = std::pair<double, NodeId>;
using MinQueue =
    std::priority_queue<Item, std::vector<Item>, std::greater<>>;

/// Dijkstra continuation: pops until empty, relaxing over `g`, with
/// stale-skip against `dist`. Counts pops in `rescanned`.
void RunQueue(const Graph& g, MinQueue* pq, std::vector<double>* dist,
              std::vector<NodeId>* pred, size_t* rescanned) {
  while (!pq->empty()) {
    const auto [du, x] = pq->top();
    pq->pop();
    if (du > (*dist)[static_cast<size_t>(x)]) continue;
    ++*rescanned;
    for (const graph::Edge& e : g.Neighbors(x)) {
      const double nd = du + e.cost;
      if (nd < (*dist)[static_cast<size_t>(e.to)]) {
        (*dist)[static_cast<size_t>(e.to)] = nd;
        (*pred)[static_cast<size_t>(e.to)] = x;
        pq->emplace(nd, e.to);
      }
    }
  }
}

}  // namespace

Result<ShortestPathTree> RepairAfterEdgeChange(
    const Graph& updated_graph, const ShortestPathTree& old_tree,
    NodeId u, NodeId v, const Graph* reverse, IncrementalStats* stats) {
  const size_t n = updated_graph.num_nodes();
  if (old_tree.num_nodes() != n) {
    return Status::InvalidArgument(
        "tree and graph disagree on node count");
  }
  if (!updated_graph.HasNode(u) || !updated_graph.HasNode(v)) {
    return Status::InvalidArgument("unknown edge endpoint");
  }

  IncrementalStats local;
  std::vector<double> dist(n);
  std::vector<NodeId> pred(n);
  for (NodeId x = 0; x < static_cast<NodeId>(n); ++x) {
    dist[static_cast<size_t>(x)] = old_tree.Distance(x);
    pred[static_cast<size_t>(x)] = old_tree.Predecessor(x);
  }
  const NodeId source = old_tree.source();

  // Cheapest surviving u -> v cost in the updated graph (+inf if removed).
  double new_cost = kInf;
  for (const graph::Edge& e : updated_graph.Neighbors(u)) {
    if (e.to == v) new_cost = std::min(new_cost, e.cost);
  }

  MinQueue pq;

  // -- Decrease side: the new edge may open cheaper paths through v.
  if (dist[static_cast<size_t>(u)] != kInf &&
      dist[static_cast<size_t>(u)] + new_cost <
          dist[static_cast<size_t>(v)]) {
    dist[static_cast<size_t>(v)] =
        dist[static_cast<size_t>(u)] + new_cost;
    pred[static_cast<size_t>(v)] = u;
    pq.emplace(dist[static_cast<size_t>(v)], v);
    RunQueue(updated_graph, &pq, &dist, &pred, &local.nodes_rescanned);
    if (stats != nullptr) *stats = local;
    return ShortestPathTree(source, std::move(dist), std::move(pred));
  }

  // -- Increase side: invalidate every node whose tree path crossed
  //    u -> v (v and its tree descendants, if v hung off u).
  if (pred[static_cast<size_t>(v)] == u && v != source) {
    // affected(x): x routes through v in the predecessor tree.
    std::vector<int8_t> affected(n, -1);  // -1 unknown, 0 no, 1 yes
    affected[static_cast<size_t>(v)] = 1;
    affected[static_cast<size_t>(source)] = 0;
    for (NodeId x = 0; x < static_cast<NodeId>(n); ++x) {
      // Chase predecessors until a memoised node, then back-fill.
      std::vector<NodeId> chain;
      NodeId at = x;
      while (at != graph::kInvalidNode &&
             affected[static_cast<size_t>(at)] == -1) {
        chain.push_back(at);
        at = pred[static_cast<size_t>(at)];
      }
      const int8_t verdict =
          (at == graph::kInvalidNode) ? 0 : affected[static_cast<size_t>(at)];
      for (const NodeId c : chain) {
        affected[static_cast<size_t>(c)] = verdict;
      }
    }

    // Drop affected labels, then re-seed each affected node from its best
    // unaffected in-neighbour.
    const Graph local_reverse =
        reverse == nullptr ? ReverseOf(updated_graph) : Graph();
    const Graph& rev = reverse == nullptr ? local_reverse : *reverse;
    if (rev.num_nodes() != n) {
      return Status::InvalidArgument("reverse graph does not match");
    }
    for (NodeId x = 0; x < static_cast<NodeId>(n); ++x) {
      if (affected[static_cast<size_t>(x)] != 1) continue;
      ++local.nodes_invalidated;
      dist[static_cast<size_t>(x)] = kInf;
      pred[static_cast<size_t>(x)] = graph::kInvalidNode;
    }
    for (NodeId x = 0; x < static_cast<NodeId>(n); ++x) {
      if (affected[static_cast<size_t>(x)] != 1) continue;
      for (const graph::Edge& in : rev.Neighbors(x)) {
        if (affected[static_cast<size_t>(in.to)] == 1) continue;
        const double via = dist[static_cast<size_t>(in.to)] + in.cost;
        if (via < dist[static_cast<size_t>(x)]) {
          dist[static_cast<size_t>(x)] = via;
          pred[static_cast<size_t>(x)] = in.to;
        }
      }
      if (dist[static_cast<size_t>(x)] != kInf) {
        pq.emplace(dist[static_cast<size_t>(x)], x);
      }
    }
    RunQueue(updated_graph, &pq, &dist, &pred, &local.nodes_rescanned);
  }
  // else: the changed edge was not on any tree path and did not improve
  // anything — the old tree is already exact.

  if (stats != nullptr) *stats = local;
  return ShortestPathTree(source, std::move(dist), std::move(pred));
}

}  // namespace atis::core
