#include "core/memory_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<NodeId> ReconstructPath(const std::vector<NodeId>& pred,
                                    NodeId source, NodeId destination) {
  std::vector<NodeId> path;
  for (NodeId at = destination; at != graph::kInvalidNode;
       at = pred[static_cast<size_t>(at)]) {
    path.push_back(at);
    if (at == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Frontier entry for the best-first algorithms. Ordering: smaller f first;
/// ties prefer larger g (deeper nodes), then smaller node id — fully
/// deterministic, and mirrored by the database implementations.
struct HeapEntry {
  double f;
  double g;
  NodeId node;
  uint64_t version;  // stale-entry detection for kAvoid / kEliminate

  bool operator>(const HeapEntry& o) const {
    if (f != o.f) return f > o.f;
    if (g != o.g) return g < o.g;
    return node > o.node;
  }
};

enum class NodeState : uint8_t { kNull, kOpen, kClosed };

/// Shared best-first engine: Dijkstra when `estimator` is null.
PathResult BestFirst(const Graph& g, NodeId source, NodeId destination,
                     const Estimator* estimator,
                     const MemorySearchOptions& options, bool allow_reopen) {
  PathResult result;
  if (!g.HasNode(source) || !g.HasNode(destination)) return result;

  const size_t n = g.num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> pred(n, graph::kInvalidNode);
  std::vector<NodeState> state(n, NodeState::kNull);
  std::vector<uint64_t> version(n, 0);

  auto h = [&](NodeId u) {
    return estimator == nullptr
               ? 0.0
               : estimator->EstimateNodes(u, g.point(u), destination,
                                          g.point(destination));
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> open;
  size_t open_size = 0;  // live (non-stale) entries

  auto push_open = [&](NodeId u) {
    switch (options.duplicate_policy) {
      case DuplicatePolicy::kAvoid:
      case DuplicatePolicy::kEliminate:
        // Membership check / post-insert elimination: at most one live
        // entry per node; older entries are invalidated by the version.
        if (state[static_cast<size_t>(u)] != NodeState::kOpen) ++open_size;
        ++version[static_cast<size_t>(u)];
        break;
      case DuplicatePolicy::kAllow:
        ++open_size;
        break;
    }
    state[static_cast<size_t>(u)] = NodeState::kOpen;
    open.push({dist[static_cast<size_t>(u)] + h(u),
               dist[static_cast<size_t>(u)], u,
               version[static_cast<size_t>(u)]});
  };

  dist[static_cast<size_t>(source)] = 0.0;
  push_open(source);
  result.stats.frontier_peak = 1;

  while (!open.empty()) {
    const HeapEntry top = open.top();
    open.pop();
    const NodeId u = top.node;
    const bool stale =
        options.duplicate_policy == DuplicatePolicy::kAllow
            ? (state[static_cast<size_t>(u)] != NodeState::kOpen ||
               top.g > dist[static_cast<size_t>(u)])
            : (top.version != version[static_cast<size_t>(u)] ||
               state[static_cast<size_t>(u)] != NodeState::kOpen);
    if (stale) {
      // With duplicates allowed, selecting a stale tuple is a (redundant)
      // iteration of the algorithm; with avoidance it never surfaces.
      if (options.duplicate_policy == DuplicatePolicy::kAllow) {
        ++result.stats.iterations;
      }
      continue;
    }
    --open_size;

    if (u == destination) {
      // Terminating selection: not counted (Lemma 2 / Lemma 3 traces).
      result.found = true;
      result.cost = dist[static_cast<size_t>(u)];
      result.path = ReconstructPath(pred, source, destination);
      break;
    }

    state[static_cast<size_t>(u)] = NodeState::kClosed;
    ++result.stats.iterations;
    ++result.stats.nodes_expanded;

    for (const graph::Edge& e : g.Neighbors(u)) {
      ++result.stats.nodes_generated;
      const double nd = dist[static_cast<size_t>(u)] + e.cost;
      if (nd < dist[static_cast<size_t>(e.to)]) {
        ++result.stats.nodes_improved;
        const NodeState prev = state[static_cast<size_t>(e.to)];
        if (prev == NodeState::kClosed && !allow_reopen) {
          // Dijkstra (Figure 2) never reinserts explored nodes; with
          // non-negative costs this branch is unreachable anyway.
          continue;
        }
        dist[static_cast<size_t>(e.to)] = nd;
        pred[static_cast<size_t>(e.to)] = u;
        if (prev == NodeState::kClosed) ++result.stats.reopenings;
        push_open(e.to);
        result.stats.frontier_peak =
            std::max<uint64_t>(result.stats.frontier_peak, open_size);
      }
    }
  }

  result.optimality_guaranteed =
      (estimator == nullptr) || options.estimator_known_admissible;
  return result;
}

}  // namespace

PathResult IterativeBfsSearch(const Graph& g, NodeId source,
                              NodeId destination,
                              const MemorySearchOptions& options) {
  (void)options;  // frontier rounds make duplicate policy moot here
  PathResult result;
  if (!g.HasNode(source) || !g.HasNode(destination)) return result;

  const size_t n = g.num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> pred(n, graph::kInvalidNode);
  std::vector<uint8_t> in_next(n, 0);
  dist[static_cast<size_t>(source)] = 0.0;

  std::vector<NodeId> current{source};
  std::vector<NodeId> next;
  while (!current.empty()) {
    ++result.stats.iterations;
    result.stats.frontier_peak =
        std::max<uint64_t>(result.stats.frontier_peak, current.size());
    next.clear();
    for (const NodeId u : current) {
      ++result.stats.nodes_expanded;
      for (const graph::Edge& e : g.Neighbors(u)) {
        ++result.stats.nodes_generated;
        const double nd = dist[static_cast<size_t>(u)] + e.cost;
        if (nd < dist[static_cast<size_t>(e.to)]) {
          ++result.stats.nodes_improved;
          if (dist[static_cast<size_t>(e.to)] != kInf &&
              !in_next[static_cast<size_t>(e.to)]) {
            ++result.stats.reopenings;  // relabelled in a later round
          }
          dist[static_cast<size_t>(e.to)] = nd;
          pred[static_cast<size_t>(e.to)] = u;
          if (!in_next[static_cast<size_t>(e.to)]) {
            in_next[static_cast<size_t>(e.to)] = 1;
            next.push_back(e.to);
          }
        }
      }
    }
    for (const NodeId v : next) in_next[static_cast<size_t>(v)] = 0;
    current.swap(next);
  }

  if (dist[static_cast<size_t>(destination)] != kInf) {
    result.found = true;
    result.cost = dist[static_cast<size_t>(destination)];
    result.path = ReconstructPath(pred, source, destination);
  }
  return result;
}

PathResult DijkstraSearch(const Graph& g, NodeId source, NodeId destination,
                          const MemorySearchOptions& options) {
  return BestFirst(g, source, destination, /*estimator=*/nullptr, options,
                   /*allow_reopen=*/false);
}

PathResult AStarSearch(const Graph& g, NodeId source, NodeId destination,
                       const Estimator& estimator,
                       const MemorySearchOptions& options) {
  return BestFirst(g, source, destination, &estimator, options,
                   /*allow_reopen=*/true);
}

}  // namespace atis::core
