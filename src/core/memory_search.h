// In-memory implementations of the three path-computation algorithms
// (Section 3), sharing the paper's iteration-counting rules with the
// database-resident implementations in db_search.h.
//
// These run on the plain adjacency-list Graph and report zero I/O; they are
// the wall-clock benchmark substrate and the reference oracle the
// database-resident versions are tested against (iteration counts and path
// costs must agree).
#pragma once

#include "core/estimator.h"
#include "core/search_types.h"
#include "graph/graph.h"

namespace atis::core {

struct MemorySearchOptions {
  DuplicatePolicy duplicate_policy = DuplicatePolicy::kAvoid;
  /// Treat the estimator as known-admissible (controls the result's
  /// optimality_guaranteed flag for A*; verify with
  /// EstimatorIsAdmissibleOn when unsure).
  bool estimator_known_admissible = true;
};

/// Iterative (breadth-first, label-correcting) algorithm — Figure 1.
/// One iteration = one frontier round; runs until the frontier empties,
/// regardless of how early the destination is labelled.
PathResult IterativeBfsSearch(const graph::Graph& g, graph::NodeId source,
                              graph::NodeId destination,
                              const MemorySearchOptions& options = {});

/// Dijkstra's algorithm — Figure 2. One iteration = one node expansion;
/// terminates when the destination is selected (that selection is not
/// counted, matching the paper's traces).
PathResult DijkstraSearch(const graph::Graph& g, graph::NodeId source,
                          graph::NodeId destination,
                          const MemorySearchOptions& options = {});

/// A* — Figure 3. Like Dijkstra but expands by C(s,u) + f(u,d) and may
/// reopen closed nodes when a cheaper path to them appears.
PathResult AStarSearch(const graph::Graph& g, graph::NodeId source,
                       graph::NodeId destination, const Estimator& estimator,
                       const MemorySearchOptions& options = {});

}  // namespace atis::core
