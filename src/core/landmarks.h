// Landmark (ALT) preprocessing for A* — "Version 4".
//
// The paper's Versions 1-3 differ only in frontier representation and in
// the geometric estimator (Euclidean vs Manhattan); the whole argument is
// that a tighter admissible estimator shrinks the A* frontier and with it
// the block I/O. Landmark lower bounds are the strictly tighter
// continuation of that line: precompute exact shortest-path distances from
// a few well-spread landmark nodes, then bound any remaining distance with
// the triangle inequality. On a directed map, for landmark l, node n and
// destination t:
//
//     d(n, t) >= d(l, t) - d(l, n)     (forward column)
//     d(n, t) >= d(n, l) - d(t, l)     (backward column)
//
// and the estimator takes the max over landmarks and both columns — on a
// symmetric graph this is the classic max_l |d(l,t) - d(l,n)|. Both bounds
// hold for ANY non-negative cost model, unlike the geometric estimators
// which need edge costs to dominate geometric length.
//
// Landmarks are selected by farthest-point sampling (greedy: each new
// landmark is the node farthest from the already-chosen set), distances
// come from exact SSSP runs, and the table persists as a landmarkDist
// relation in the RelationalGraphStore so its I/O is accounted like every
// other relation. The estimator itself reads an in-memory copy loaded once
// per store replica.
//
// Traffic note: congestion only *raises* edge costs, and a lower bound for
// the cheaper metric is still a lower bound for the dearer one, so landmark
// tables stay admissible across congestion updates. A cost *decrease*
// (clearing an incident) invalidates them — recompute before serving.
#pragma once

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "graph/graph.h"
#include "graph/relational_graph.h"
#include "util/status.h"

namespace atis::core {

struct LandmarkOptions {
  /// Landmark count k; clamped to the number of reachable nodes. Eight
  /// covers the compass directions of a roughly planar road map.
  size_t num_landmarks = 8;
  /// Farthest-point sampling starts from the node farthest from this one.
  graph::NodeId seed_node = 0;
};

/// The precomputed landmark table: k landmark ids plus, per landmark, the
/// exact distance columns d(l -> v) and d(v -> l) for every node v.
/// Immutable after construction; shared read-only between threads.
class LandmarkSet {
 public:
  LandmarkSet(std::vector<graph::NodeId> landmarks,
              std::vector<std::vector<double>> dist_from,
              std::vector<std::vector<double>> dist_to)
      : landmarks_(std::move(landmarks)),
        dist_from_(std::move(dist_from)),
        dist_to_(std::move(dist_to)) {}

  size_t num_landmarks() const { return landmarks_.size(); }
  size_t num_nodes() const {
    return dist_from_.empty() ? 0 : dist_from_.front().size();
  }
  const std::vector<graph::NodeId>& landmarks() const { return landmarks_; }

  /// d(landmarks()[l] -> v); +inf when unreachable.
  double DistFrom(size_t l, graph::NodeId v) const {
    return dist_from_[l][static_cast<size_t>(v)];
  }
  /// d(v -> landmarks()[l]); +inf when unreachable.
  double DistTo(size_t l, graph::NodeId v) const {
    return dist_to_[l][static_cast<size_t>(v)];
  }

  /// The ALT lower bound on d(from -> to): max over landmarks and both
  /// triangle-inequality columns, clamped to >= 0. Returns +inf only when
  /// the columns prove `to` unreachable from `from`.
  double LowerBound(graph::NodeId from, graph::NodeId to) const;

  /// Flattens to landmarkDist rows for RelationalGraphStore persistence.
  std::vector<graph::RelationalGraphStore::LandmarkDistRow> ToRows() const;
  /// Rebuilds a set from persisted rows (the inverse of ToRows).
  /// InvalidArgument on ragged or empty input.
  static Result<LandmarkSet> FromRows(
      const std::vector<graph::RelationalGraphStore::LandmarkDistRow>& rows);

 private:
  std::vector<graph::NodeId> landmarks_;
  std::vector<std::vector<double>> dist_from_;  // [landmark][node]
  std::vector<std::vector<double>> dist_to_;    // [landmark][node]
};

/// Selects landmarks by farthest-point sampling and computes both distance
/// columns with exact SSSP runs (2k Dijkstras). Deterministic. Distances
/// are measured on `g`'s costs exactly as given — when the searches will
/// run against a RelationalGraphStore, pass WithStoredEdgeCosts(g) so the
/// table matches the store's float-rounded metric (an unrounded table can
/// overestimate by a rounding ulp, silently losing admissibility).
Result<LandmarkSet> SelectLandmarks(const graph::Graph& g,
                                    const LandmarkOptions& options = {});

/// Recomputes both distance columns for an *existing* landmark selection
/// against a new cost metric (2k Dijkstras, no re-selection). This is the
/// revalidation hook the write path calls when a traffic update *lowers*
/// an edge cost — the old columns stop being lower bounds, but the
/// landmark placement itself is a topology property and stays good.
/// Pass the same float-rounded graph the serving engines measure on.
Result<LandmarkSet> RecomputeLandmarks(
    const std::vector<graph::NodeId>& landmarks, const graph::Graph& g);

/// Copy of `g` with every edge cost rounded through the 4-byte float that
/// RelationalGraphStore::EdgeSchema stores — the metric the database
/// engine actually accumulates.
graph::Graph WithStoredEdgeCosts(const graph::Graph& g);

/// EstimatorKind::kLandmark. When `euclidean_scale` > 0 the bound is
/// max(ALT, euclidean_scale * straight-line distance) — only pass a scale
/// that is itself admissible (1.0 on distance-cost graphs); 0 keeps the
/// pure ALT bound, admissible under any cost model.
std::unique_ptr<Estimator> MakeLandmarkEstimator(
    std::shared_ptr<const LandmarkSet> set, double euclidean_scale = 0.0);

/// Persists `set` into `store`'s landmarkDist relation and loads it back
/// through the metered storage path (the estimator must see exactly what
/// the database holds). Publishes preprocessing cost — wall seconds and
/// block I/O — to MetricsRegistry::Default() as
/// atis_landmark_preprocess_seconds / _blocks_total and the landmark count
/// as atis_landmark_count.
Result<std::shared_ptr<const LandmarkSet>> PersistAndLoadLandmarks(
    const LandmarkSet& set, graph::RelationalGraphStore* store);

}  // namespace atis::core
