// Single-source and all-pair shortest paths.
//
// The paper frames single-pair computation against these two broader
// classes: all-pair path computation (transitive closure) and
// single-source computation (partial transitive closure). This module
// provides both as first-class library operations — they back route
// evaluation over many destinations, estimator admissibility analysis,
// and the reference oracles in tests.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace atis::core {

/// The result of a single-source run: distance and predecessor per node.
/// Unreachable nodes have distance == infinity and pred == kInvalidNode.
class ShortestPathTree {
 public:
  ShortestPathTree(graph::NodeId source, std::vector<double> dist,
                   std::vector<graph::NodeId> pred)
      : source_(source), dist_(std::move(dist)), pred_(std::move(pred)) {}

  graph::NodeId source() const { return source_; }
  size_t num_nodes() const { return dist_.size(); }

  bool Reaches(graph::NodeId v) const {
    return v >= 0 && static_cast<size_t>(v) < dist_.size() &&
           dist_[static_cast<size_t>(v)] !=
               std::numeric_limits<double>::infinity();
  }

  /// Cost of the shortest path source -> v (+inf when unreachable).
  double Distance(graph::NodeId v) const {
    return dist_[static_cast<size_t>(v)];
  }

  graph::NodeId Predecessor(graph::NodeId v) const {
    return pred_[static_cast<size_t>(v)];
  }

  /// Reconstructs the node sequence source..v (empty when unreachable).
  std::vector<graph::NodeId> PathTo(graph::NodeId v) const;

  const std::vector<double>& distances() const { return dist_; }

 private:
  graph::NodeId source_;
  std::vector<double> dist_;
  std::vector<graph::NodeId> pred_;
};

/// Dijkstra to every reachable node (no early termination).
/// InvalidArgument on an unknown source.
Result<ShortestPathTree> SingleSourceDijkstra(const graph::Graph& g,
                                              graph::NodeId source);

/// All-pair shortest path distances via repeated single-source runs
/// (the transitive-closure class). Row s, column v = dist(s, v).
/// Intended for analysis on paper-scale graphs (O(n * m log n)).
Result<std::vector<std::vector<double>>> AllPairsDistances(
    const graph::Graph& g);

/// Largest finite pairwise distance (the graph's cost diameter), ignoring
/// unreachable pairs. Zero for an empty graph.
Result<double> GraphDiameter(const graph::Graph& g);

}  // namespace atis::core
