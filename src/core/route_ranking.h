// Multi-criteria route ranking.
//
// Section 1.1: routes are chosen "in terms of travel distance, travel
// time and other criteria". Given alternate routes (e.g. from
// KShortestPaths), this service scores each against a weighted criteria
// profile — cost, geometric directness, and turn count — and ranks them,
// so an ATIS can present "fastest", "simplest", or blended orderings.
#pragma once

#include <string>
#include <vector>

#include "core/route_service.h"
#include "graph/graph.h"
#include "util/status.h"

namespace atis::core {

/// Relative importance of each criterion (>= 0; they are normalised).
struct RankingWeights {
  double cost = 1.0;        ///< total route cost (lower is better)
  double directness = 0.0;  ///< polyline/straight-line ratio (lower better)
  double turns = 0.0;       ///< number of >=30 degree turns (lower better)
};

struct RankedRoute {
  std::vector<graph::NodeId> path;
  double cost = 0.0;
  double directness = 0.0;
  size_t turns = 0;
  /// Blended score in [0, 1] per criterion-normalised units; lower wins.
  double score = 0.0;
};

/// Number of direction changes of at least `threshold_deg` along a route.
size_t CountTurns(const graph::Graph& g,
                  const std::vector<graph::NodeId>& path,
                  double threshold_deg = 30.0);

/// Scores and sorts candidate routes (best first). Criteria are min-max
/// normalised across the candidate set, then blended with `weights`.
/// Invalid (non-drivable) candidates are dropped. InvalidArgument when
/// all weights are zero or negative.
Result<std::vector<RankedRoute>> RankRoutes(
    const graph::Graph& g,
    const std::vector<std::vector<graph::NodeId>>& candidates,
    const RankingWeights& weights);

}  // namespace atis::core
