// Per-replica circuit breaker for the serving path.
//
// Each RouteServer worker owns one breaker guarding its store replica.
// After `failure_threshold` consecutive storage faults the breaker opens:
// the replica is quarantined and queries skip straight to degraded
// fallbacks instead of hammering a device that keeps failing. Once the
// quarantine elapses, the next request is admitted as a half-open probe —
// if it succeeds the breaker closes and normal serving resumes; if it
// fails the quarantine restarts.
//
// State machine:  Closed --K consecutive failures--> Open
//                 Open --quarantine elapsed--> HalfOpen (one probe)
//                 HalfOpen --probe ok--> Closed / --probe fails--> Open
//
// Thread-safe (a mutex guards every transition); in the route server each
// breaker is driven by a single worker but may be inspected concurrently.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace atis::core {

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive storage faults that open the breaker. Clamped to >= 1.
    int failure_threshold = 3;
    /// Quarantine before a half-open probe is admitted.
    uint32_t open_millis = 100;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  /// Monotonic transition/rejection counters.
  struct Stats {
    uint64_t opened = 0;    ///< Closed/HalfOpen -> Open transitions
    uint64_t probes = 0;    ///< half-open probes admitted
    uint64_t rejected = 0;  ///< requests refused while Open
  };

  CircuitBreaker();  // default Options (a nested class's default member
                     // initializers cannot feed a default argument here)
  explicit CircuitBreaker(Options options);

  /// Whether a request may hit the replica now. While Open, returns false
  /// until the quarantine elapses, then transitions to HalfOpen and admits
  /// exactly one probe (further requests are refused until the probe's
  /// outcome is recorded).
  bool AllowRequest();

  /// Report the outcome of an admitted request. Success closes the breaker
  /// and resets the failure streak; a storage-fault failure extends the
  /// streak (or re-opens a half-open breaker). Deadline expiries should be
  /// reported as neither — they say nothing about replica health.
  void RecordSuccess();
  /// Returns true when this failure opened the breaker.
  bool RecordFailure();

  State state() const;
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;         // guarded by mu_
  int consecutive_failures_ = 0;         // guarded by mu_
  Clock::time_point open_until_{};       // guarded by mu_
  Stats stats_;                          // guarded by mu_
};

const char* CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace atis::core
