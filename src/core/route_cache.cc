#include "core/route_cache.h"

#include <algorithm>
#include <functional>

namespace atis::core {

namespace {

size_t MixHash(size_t seed, size_t v) {
  // boost::hash_combine mixing constant (golden-ratio based).
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t RouteCache::KeyHash::operator()(const Key& k) const {
  size_t h = std::hash<int64_t>{}(static_cast<int64_t>(k.source));
  h = MixHash(h, std::hash<int64_t>{}(static_cast<int64_t>(k.destination)));
  h = MixHash(h, static_cast<size_t>(k.algorithm));
  h = MixHash(h, static_cast<size_t>(k.version));
  return h;
}

RouteCache::RouteCache() : RouteCache(Options{}) {}

RouteCache::RouteCache(Options options) {
  const size_t capacity = std::max<size_t>(1, options.capacity);
  const size_t shards =
      std::max<size_t>(1, std::min(options.shards, capacity));
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

RouteCache::Shard& RouteCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

RouteCache::LookupResult RouteCache::Lookup(const Key& key,
                                            bool evict_stale) {
  const uint64_t now = epoch();
  Shard& shard = ShardFor(key);
  LookupResult out;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return out;
  }
  if (it->second->epoch != now || it->second->stale) {
    // Computed under an older cost model (or region-invalidated): report
    // a miss so the caller recomputes under the current one, and (unless
    // the entry is being kept as degraded-mode fallback material) evict
    // it.
    ++shard.stats.misses;
    if (evict_stale) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.stats.stale_evictions;
      out.stale_evicted = true;
    }
    return out;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  out.result = it->second->result;
  return out;
}

RouteCache::StaleLookupResult RouteCache::LookupAllowStale(const Key& key) {
  const uint64_t now = epoch();
  Shard& shard = ShardFor(key);
  StaleLookupResult out;
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return out;
  }
  // The entry survives (and keeps its recency) even when stale: a later
  // healthy query for the same key still evicts-and-recomputes via
  // Lookup(), so staleness never outlives the outage plus one hit.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  out.result = it->second->result;
  out.stale = it->second->epoch != now || it->second->stale;
  if (out.stale) {
    ++shard.stats.stale_serves;
  } else {
    ++shard.stats.hits;
  }
  return out;
}

void RouteCache::Insert(const Key& key, uint64_t observed_epoch,
                        const PathResult& result,
                        std::vector<int32_t> regions,
                        std::optional<uint64_t> observed_seq) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Epoch (and invalidation-sequence) check under the shard lock: a
  // result computed before a traffic update (and raced past it) must not
  // be cached. Re-reading epoch() here is safe because BumpEpoch
  // happens-before any lookup that must not see the stale entry; the same
  // holds for the sequence bump in InvalidateRegions, which precedes its
  // shard scans.
  if (epoch() != observed_epoch ||
      (observed_seq.has_value() && invalidation_seq() != *observed_seq)) {
    ++shard.stats.stale_inserts_dropped;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->epoch = observed_epoch;
    it->second->result = result;
    it->second->regions = std::move(regions);
    it->second->stale = false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, observed_epoch, result,
                             std::move(regions), /*stale=*/false});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.lru_evictions;
  }
}

size_t RouteCache::InvalidateRegions(std::span<const int32_t> regions) {
  // Sequence bump first: any compute that observed the old sequence and
  // inserts after our scan passed its shard is dropped at insert time, so
  // the scan cannot miss a concurrently-inserted intersecting entry.
  invalidation_seq_.fetch_add(1, std::memory_order_acq_rel);
  size_t invalidated = 0;
  bool counted_call = false;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!counted_call) {  // once per call, not once per shard
      ++shard->stats.region_invalidations;
      counted_call = true;
    }
    for (Entry& entry : shard->lru) {
      if (entry.stale) continue;
      for (const int32_t r : regions) {
        if (std::binary_search(entry.regions.begin(), entry.regions.end(),
                               r)) {
          entry.stale = true;
          ++shard->stats.region_entries_invalidated;
          ++invalidated;
          break;
        }
      }
    }
  }
  return invalidated;
}

RouteCache::Stats RouteCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.stale_evictions += shard->stats.stale_evictions;
    total.lru_evictions += shard->stats.lru_evictions;
    total.insertions += shard->stats.insertions;
    total.stale_inserts_dropped += shard->stats.stale_inserts_dropped;
    total.stale_serves += shard->stats.stale_serves;
    total.region_invalidations += shard->stats.region_invalidations;
    total.region_entries_invalidated +=
        shard->stats.region_entries_invalidated;
  }
  return total;
}

size_t RouteCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

void RouteCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace atis::core
