// Partition-boundary overlay with fast metric customization — "A* Version 5".
//
// ALT (Version 4) is the ceiling of per-query cleverness: every search
// still explores the base graph, and every traffic update invalidates the
// whole serving cache. The customizable-route-planning line splits the
// work differently:
//
//   Topology phase (once per map):   partition the nodes into Hilbert
//     cells, mark boundary nodes (endpoints of cell-crossing edges), and
//     record which boundary pairs of each cell are connected by an
//     intra-cell path. Reachability is metric-independent, so this
//     persists as two relations (OC, OS) through the metered storage
//     layer and as an ATISO1 text file — paid once per map.
//
//   Customization phase (per metric): per cell, run restricted Dijkstras
//     from each member over the cell's intra-cell graph — boundary-rooted
//     forward trees give every shortcut cost AND the boundary -> member
//     distances, reverse trees give member -> boundary, and the full set
//     of member-rooted trees gives an in-cell all-pairs table so
//     same-cell queries need no search at all. Cells are independent, so
//     customization parallelises across the RouteServer's store replicas,
//     and a single-edge traffic update re-customizes only the affected
//     cell (same-cell edge) or patches one cross arc (cross-cell edge)
//     instead of rebuilding the index or bumping a global cache epoch.
//
//   Query phase: DbSearchEngine Version 5 runs A* over *boundary nodes
//     only* — seeded with the source's member -> boundary column, stepping
//     along shortcut and cross-cell arcs, finishing through the
//     destination's boundary -> member column — so a cross-cell query
//     settles a handful of overlay nodes and touches the store only for
//     the two endpoint probes.
//
// Exactness: any path decomposes at its cell-boundary crossings; every
// crossing node is a boundary node, intra-cell segments are represented
// exactly by the customized tables, inter-cell segments by the original
// cross edges. Same-cell queries additionally consult the in-cell
// all-pairs table (a shortest path that never leaves the cell has no
// boundary decomposition) and take the cheaper of the two; the in-cell
// candidate also bounds the overlay search from above, so short local
// trips terminate after a handful of overlay pops.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/relational_graph.h"
#include "util/status.h"

namespace atis::core {

struct OverlayOptions {
  /// The partition is the 2^cell_order x 2^cell_order Hilbert grid over
  /// the map's bounding box (graph/spatial_layout.h). Smaller orders mean
  /// fewer, larger cells: fewer overlay expansions per query but dearer
  /// per-cell re-customization and O(|members|^2) in-cell tables. Order 1
  /// (4 cells) is query-optimal at this repo's map scale (<= a few
  /// thousand nodes); raise it for larger maps.
  uint32_t cell_order = 1;
};

/// The metric-independent half of the overlay index. Immutable after
/// construction; shared read-only between threads.
class OverlayTopology {
 public:
  struct Cell {
    std::vector<graph::NodeId> members;   ///< sorted by node id
    std::vector<graph::NodeId> boundary;  ///< sorted subset of members
    /// boundary[i]'s index in `members`.
    std::vector<int32_t> boundary_member_idx;
    /// shortcut_targets[i] = boundary indices reachable from boundary[i]
    /// by an intra-cell path (self excluded). Metric-independent.
    std::vector<std::vector<int32_t>> shortcut_targets;
  };

  /// Partitions `g` on the Hilbert grid and derives boundary nodes and
  /// shortcut reachability. Cells are numbered densely in Hilbert-curve
  /// order. A degenerate bounding box (absent or constant geometry)
  /// yields a single cell holding every node — queries then always take
  /// the in-cell direct search. InvalidArgument on an empty graph or
  /// cell_order outside [0, 8].
  static Result<OverlayTopology> Build(const graph::Graph& g,
                                       const OverlayOptions& options);

  /// Rebuilds a topology from persisted rows; coordinates re-attach from
  /// `g` (quantised, as Build stores them). InvalidArgument when the rows
  /// do not cover g's nodes or reference non-boundary shortcut endpoints.
  static Result<OverlayTopology> FromRows(
      const std::vector<graph::RelationalGraphStore::OverlayCellRow>& cells,
      const std::vector<graph::RelationalGraphStore::OverlayShortcutRow>&
          links,
      const graph::Graph& g, uint32_t cell_order);

  /// Flattens to OC / OS rows for RelationalGraphStore persistence.
  std::vector<graph::RelationalGraphStore::OverlayCellRow> ToCellRows()
      const;
  std::vector<graph::RelationalGraphStore::OverlayShortcutRow>
  ToShortcutRows() const;

  /// ATISO1 text round trip, so topology preprocessing is paid once per
  /// map file rather than once per process.
  Status SaveToFile(const std::string& path) const;
  static Result<OverlayTopology> LoadFromFile(const std::string& path,
                                              const graph::Graph& g);

  uint32_t cell_order() const { return cell_order_; }
  size_t num_nodes() const { return cell_of_.size(); }
  size_t num_cells() const { return cells_.size(); }
  size_t num_boundary_nodes() const { return num_boundary_; }
  size_t num_shortcuts() const { return num_shortcuts_; }

  int32_t CellOf(graph::NodeId u) const {
    return cell_of_[static_cast<size_t>(u)];
  }
  bool IsBoundary(graph::NodeId u) const {
    return boundary_idx_of_[static_cast<size_t>(u)] >= 0;
  }
  /// u's index in its cell's `members` vector.
  int32_t MemberIndexOf(graph::NodeId u) const {
    return member_idx_of_[static_cast<size_t>(u)];
  }
  /// u's index in its cell's `boundary` vector; -1 for interior nodes.
  int32_t BoundaryIndexOf(graph::NodeId u) const {
    return boundary_idx_of_[static_cast<size_t>(u)];
  }
  const Cell& cell(int32_t c) const {
    return cells_[static_cast<size_t>(c)];
  }
  /// Quantised coordinates (the store's geometry) for estimators.
  const graph::Point& point(graph::NodeId u) const {
    return points_[static_cast<size_t>(u)];
  }

 private:
  OverlayTopology() = default;
  /// Derives boundary/member/shortcut structure from cell_of_ + g.
  Status Finalize(const graph::Graph& g);

  uint32_t cell_order_ = 0;
  std::vector<int32_t> cell_of_;        // [node] -> dense cell id
  std::vector<int32_t> member_idx_of_;  // [node] -> index in cell members
  std::vector<int32_t> boundary_idx_of_;  // [node] -> boundary index or -1
  std::vector<graph::Point> points_;      // [node] quantised coordinates
  std::vector<Cell> cells_;
  size_t num_boundary_ = 0;
  size_t num_shortcuts_ = 0;
};

/// The metric-dependent half: per-cell distance tables plus the current
/// cross-cell arc costs. Immutable once published; incremental
/// re-customization copies the customization shell and shares the
/// untouched cells' tables (copy-on-write), so in-flight readers keep a
/// consistent snapshot.
class OverlayCustomization {
 public:
  /// Distance/parent tables of one cell, all indexed by the topology
  /// cell's boundary index (bi) and member index (mi).
  struct CellTables {
    /// fwd_dist[bi][mi] = cheapest intra-cell path boundary[bi] ->
    /// members[mi] (+inf unreachable); fwd_pred[bi][mi] = mi's
    /// predecessor member index on that path (-1 at the root).
    std::vector<std::vector<double>> fwd_dist;
    std::vector<std::vector<int32_t>> fwd_pred;
    /// rev_dist[bi][mi] = cheapest intra-cell path members[mi] ->
    /// boundary[bi]; rev_succ[bi][mi] = mi's successor member index.
    std::vector<std::vector<double>> rev_dist;
    std::vector<std::vector<int32_t>> rev_succ;
    /// incell_dist[si][mi] = cheapest intra-cell path members[si] ->
    /// members[mi], for *every* member root — the customized lowest
    /// level, so a same-cell query is a table lookup rather than a
    /// query-time search (the classic CRP preprocessing/query trade).
    /// incell_pred[si][mi] = mi's predecessor member index on that path.
    /// O(|members|^2) per cell: pick cell_order so cells stay modest.
    std::vector<std::vector<double>> incell_dist;
    std::vector<std::vector<int32_t>> incell_pred;
  };

  uint64_t metric_version() const { return metric_version_; }
  const CellTables& cell(int32_t c) const {
    return *cells_[static_cast<size_t>(c)];
  }
  /// Current-metric cross-cell out-edges of u (empty for interior nodes).
  const std::vector<graph::Edge>& cross_arcs(graph::NodeId u) const {
    return cross_[static_cast<size_t>(u)];
  }

 private:
  friend Result<std::shared_ptr<const OverlayCustomization>>
  CustomizeOverlay(const OverlayTopology&,
                   std::span<graph::RelationalGraphStore* const>, uint64_t);
  friend Result<std::shared_ptr<const OverlayCustomization>>
  RecustomizeForEdge(const OverlayTopology&, const OverlayCustomization&,
                     graph::NodeId, graph::NodeId,
                     graph::RelationalGraphStore*, size_t*);
  friend Result<std::shared_ptr<const OverlayCustomization>>
  RecustomizeForEdges(
      const OverlayTopology&, const OverlayCustomization&,
      std::span<const std::pair<graph::NodeId, graph::NodeId>>,
      graph::RelationalGraphStore*, size_t*, uint64_t);

  uint64_t metric_version_ = 0;
  std::vector<std::shared_ptr<const CellTables>> cells_;  // [cell]
  std::vector<std::vector<graph::Edge>> cross_;           // [node]
};

/// Computes every cell's tables and cross arcs for the metric currently
/// stored in the S relations. Adjacency is read through the metered
/// storage layer; cells are customized in parallel, one thread per store
/// replica (each replica serves a disjoint cell subset, so the shared
/// pool sees only read traffic). `stores` must be non-empty, all loaded
/// with the same map.
Result<std::shared_ptr<const OverlayCustomization>> CustomizeOverlay(
    const OverlayTopology& topology,
    std::span<graph::RelationalGraphStore* const> stores,
    uint64_t metric_version);

/// Incremental re-customization after UpdateEdgeCost(u, v): a same-cell
/// edge recomputes cell(u)'s tables (and its members' cross arcs) from
/// the store; a cross-cell edge re-reads only u's adjacency to patch its
/// cross arcs. Untouched cells share the previous tables. *cells_changed
/// reports 1 or 0 accordingly.
Result<std::shared_ptr<const OverlayCustomization>> RecustomizeForEdge(
    const OverlayTopology& topology, const OverlayCustomization& previous,
    graph::NodeId u, graph::NodeId v,
    graph::RelationalGraphStore* store, size_t* cells_changed);

/// Batched re-customization for a whole update batch in one shot: the
/// affected cells are deduplicated first, so a hundred updates inside one
/// cell rebuild that cell once, not a hundred times. Same-cell edges mark
/// their cell for rebuild; cross-cell edges re-read just the tail node's
/// adjacency. The result's metric_version is `metric_version` verbatim —
/// the caller (the server's write path) aligns overlay versions with its
/// snapshot versions instead of counting per-edge steps. *cells_changed
/// reports the number of distinct cells rebuilt.
Result<std::shared_ptr<const OverlayCustomization>> RecustomizeForEdges(
    const OverlayTopology& topology, const OverlayCustomization& previous,
    std::span<const std::pair<graph::NodeId, graph::NodeId>> edges,
    graph::RelationalGraphStore* store, size_t* cells_changed,
    uint64_t metric_version);

/// The pair a Version 5 search needs, swapped atomically as one unit on
/// re-customization.
struct OverlayIndex {
  std::shared_ptr<const OverlayTopology> topology;
  std::shared_ptr<const OverlayCustomization> customization;
};

/// Persists `topology` into `store`'s OC/OS relations and loads it back
/// through the metered storage path (the index the engine serves must be
/// exactly what the database holds). Publishes
/// atis_overlay_{cells,boundary_nodes,shortcuts} gauges,
/// atis_overlay_preprocess_seconds, and the preprocess block counters to
/// MetricsRegistry::Default().
Result<std::shared_ptr<const OverlayTopology>> PersistAndLoadOverlayTopology(
    const OverlayTopology& topology, graph::RelationalGraphStore* store,
    const graph::Graph& g);

}  // namespace atis::core
