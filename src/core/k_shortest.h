// Alternate-route computation: the K shortest loopless paths (Yen's
// algorithm) between a single pair.
//
// ATIS route planning needs more than one answer — travellers weigh
// alternatives by criteria the cost function does not capture (the
// paper's Section 1: distance, time, "and other criteria"). This module
// produces ranked loopless alternatives on top of the Dijkstra core.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace atis::core {

struct RankedPath {
  double cost = 0.0;
  std::vector<graph::NodeId> path;
};

/// The up-to-`k` cheapest loopless paths from source to destination,
/// sorted by cost (ties broken deterministically by node sequence).
/// Returns fewer than `k` when the graph does not contain that many
/// distinct loopless paths, and an empty vector when unreachable.
/// With parallel edges, paths are distinguished by node sequence only
/// (each sequence is costed with its cheapest edges).
/// InvalidArgument on unknown endpoints or k == 0.
Result<std::vector<RankedPath>> KShortestPaths(const graph::Graph& g,
                                               graph::NodeId source,
                                               graph::NodeId destination,
                                               size_t k);

}  // namespace atis::core
