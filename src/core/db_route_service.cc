#include "core/db_route_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numbers>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace atis::core {

using graph::NodeId;
using graph::RelationalGraphStore;

Result<DbRouteEvaluation> DbEvaluateRoute(
    const RelationalGraphStore& store, const std::vector<NodeId>& path,
    const storage::CostParams& params) {
  obs::ScopedSpan span("evaluate-route", "run");
  span.Tag("path_nodes", static_cast<uint64_t>(path.size()));
  const auto started = std::chrono::steady_clock::now();
  storage::IoMeter& meter =
      store.node_relation().pool()->disk()->meter();
  const storage::IoCounters start = meter.counters();

  DbRouteEvaluation out;
  auto finish = [&]() {
    out.io = meter.counters() - start;
    out.cost_units = out.io.Cost(params);
    span.Tag("valid", out.evaluation.valid ? "1" : "0");
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    auto& reg = obs::MetricsRegistry::Default();
    const obs::Labels labels{{"algorithm", "evaluate-route"}};
    reg.GetCounter("atis_search_runs_total",
                   "Database-resident search runs", labels)
        .Increment();
    reg.GetHistogram("atis_query_latency_seconds",
                     "End-to-end route query wall time",
                     obs::Histogram::LatencyBounds(), labels)
        .Observe(seconds);
    return out;
  };

  if (path.empty()) return finish();
  if (path.size() == 1) {
    out.evaluation.valid = store.GetNode(path.front()).ok();
    out.evaluation.directness = 1.0;
    return finish();
  }

  out.evaluation.valid = true;
  double cumulative = 0.0;
  double polyline = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Segment lookup: hash-index probe on S.begin_node.
    auto adjacency = store.FetchAdjacency(path[i]);
    if (!adjacency.ok()) {
      out.evaluation.valid = false;
      break;
    }
    double seg_cost = std::numeric_limits<double>::infinity();
    for (const auto& e : *adjacency) {
      if (e.end == path[i + 1]) seg_cost = std::min(seg_cost, e.cost);
    }
    if (!std::isfinite(seg_cost)) {
      out.evaluation.valid = false;
      break;
    }
    // Endpoint geometry: ISAM probes on R.node_id.
    auto from = store.GetNode(path[i]);
    auto to = store.GetNode(path[i + 1]);
    if (!from.ok() || !to.ok()) {
      out.evaluation.valid = false;
      break;
    }
    cumulative += seg_cost;
    const double dx = to->second.x - from->second.x;
    const double dy = to->second.y - from->second.y;
    polyline += std::hypot(dx, dy);
    SegmentReport seg;
    seg.from = path[i];
    seg.to = path[i + 1];
    seg.cost = seg_cost;
    seg.cumulative_cost = cumulative;
    seg.heading_deg = std::atan2(dy, dx) * 180.0 / std::numbers::pi;
    out.evaluation.segments.push_back(seg);
  }
  out.evaluation.total_cost = cumulative;
  out.evaluation.num_segments = out.evaluation.segments.size();

  auto first = store.GetNode(path.front());
  auto last = store.GetNode(path.back());
  if (first.ok() && last.ok()) {
    out.evaluation.straight_line_distance =
        std::hypot(last->second.x - first->second.x,
                   last->second.y - first->second.y);
    out.evaluation.directness =
        out.evaluation.straight_line_distance > 0.0
            ? polyline / out.evaluation.straight_line_distance
            : 1.0;
  }
  return finish();
}

}  // namespace atis::core
