#include "core/circuit_breaker.h"

namespace atis::core {

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options{}) {}

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {
  if (options_.failure_threshold < 1) options_.failure_threshold = 1;
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() >= open_until_) {
        state_ = State::kHalfOpen;
        ++stats_.probes;
        return true;
      }
      ++stats_.rejected;
      return false;
    case State::kHalfOpen:
      // One probe is already in flight; refuse the rest until its outcome
      // is recorded.
      ++stats_.rejected;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  const bool should_open =
      state_ == State::kHalfOpen ||  // failed probe: straight back to Open
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold);
  if (!should_open) return false;
  state_ = State::kOpen;
  open_until_ =
      Clock::now() + std::chrono::milliseconds(options_.open_millis);
  ++stats_.opened;
  return true;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace atis::core
