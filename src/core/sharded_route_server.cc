#include "core/sharded_route_server.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace atis::core {

ShardedRouteServer::ShardedRouteServer(
    const graph::PartitionedGraphStore* store, Options options)
    : store_(store), options_(options) {
  num_workers_ = std::max<size_t>(1, options_.num_workers);
  size_t num_groups = options_.num_groups;
  if (num_groups == 0) {
    num_groups = std::max<size_t>(1, store_->num_partitions());
  }
  num_groups = std::min(num_groups, num_workers_);

  auto& reg = obs::MetricsRegistry::Default();
  queries_metric_ = &reg.GetCounter(
      "atis_partition_queries_total",
      "Route queries served by sharded partitioned-store servers");
  cross_metric_ = &reg.GetCounter(
      "atis_partition_cross_queries_total",
      "Served queries whose source and destination lie in different "
      "partitions (stitched through the boundary overlay)");
  settled_store_metric_ = &reg.GetCounter(
      "atis_partition_settled_store_total",
      "Store nodes settled by the restricted source/target phases of "
      "stitched queries (and by flat reference Dijkstras)");
  settled_overlay_metric_ = &reg.GetCounter(
      "atis_partition_settled_overlay_total",
      "Boundary-overlay nodes settled by the in-memory middle phase of "
      "stitched queries");
  reg.GetGauge("atis_partition_partitions",
               "Partitions (region stores) of the served partitioned store")
      .Set(static_cast<double>(store_->num_partitions()));
  reg.GetGauge("atis_partition_boundary_nodes",
               "Boundary (entry/exit) nodes of the served partitioned "
               "store's overlay")
      .Set(static_cast<double>(store_->num_boundary_nodes()));

  groups_.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    groups_.push_back(std::make_unique<Group>());
  }
  // Spread the workers across the groups as evenly as possible.
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t share = num_workers_ / num_groups +
                         (g < num_workers_ % num_groups ? 1 : 0);
    for (size_t w = 0; w < share; ++w) {
      groups_[g]->workers.emplace_back([this, g]() { WorkerLoop(g); });
    }
  }
}

ShardedRouteServer::~ShardedRouteServer() {
  stop_.store(true, std::memory_order_release);
  for (auto& group : groups_) {
    std::lock_guard<std::mutex> lock(group->mu);
    group->cv.notify_all();
  }
  for (auto& group : groups_) {
    for (std::thread& t : group->workers) t.join();
  }
}

size_t ShardedRouteServer::GroupOf(const Query& q) {
  if (options_.partition_affinity) {
    const int p = store_->PartitionOf(q.source);
    if (p >= 0) return static_cast<size_t>(p) % groups_.size();
  }
  return round_robin_.fetch_add(1, std::memory_order_relaxed) %
         groups_.size();
}

Result<std::vector<ShardedRouteServer::Response>>
ShardedRouteServer::ServeBatch(const std::vector<Query>& queries) {
  std::vector<Response> responses(queries.size());
  if (queries.empty()) return responses;
  Call call;
  call.remaining = queries.size();
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t g = GroupOf(queries[i]);
    Group& group = *groups_[g];
    {
      std::lock_guard<std::mutex> lock(group.mu);
      group.pending.push_back(WorkItem{&queries[i], &responses, i, &call});
    }
    group.cv.notify_one();
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&call]() { return call.remaining == 0; });
  return responses;
}

void ShardedRouteServer::WorkerLoop(size_t group_id) {
  Group& group = *groups_[group_id];
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(group.mu);
      group.cv.wait(lock, [this, &group]() {
        return stop_.load(std::memory_order_acquire) ||
               !group.pending.empty();
      });
      if (group.pending.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = group.pending.front();
      group.pending.pop_front();
    }
    Response resp = RunOne(group_id, item);
    resp.query_index = item.index;
    (*item.out)[item.index] = std::move(resp);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      --item.call->remaining;
    }
    done_cv_.notify_all();
  }
}

ShardedRouteServer::Response ShardedRouteServer::RunOne(
    size_t group_id, const WorkItem& item) {
  Response resp;
  resp.group = static_cast<int>(group_id);
  const auto start = std::chrono::steady_clock::now();
  graph::PartitionedGraphStore::RouteCost route;
  {
    storage::IoMeter::ScopedThreadCounters scoped(&resp.io);
    Result<graph::PartitionedGraphStore::RouteCost> result =
        options_.mode == Mode::kStitched
            ? store_->StitchedDistance(item.query->source,
                                       item.query->destination, &resp.stats)
            : store_->GlobalDijkstra(item.query->source,
                                     item.query->destination, &resp.stats);
    if (!result.ok()) {
      resp.status = result.status();
    } else {
      route = *result;
    }
  }
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (resp.status.ok()) {
    resp.found = route.found;
    resp.cost = route.cost;
  }
  resp.cross_partition = resp.stats.cross_partition;
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  queries_metric_->Increment();
  if (resp.cross_partition) cross_metric_->Increment();
  settled_store_metric_->Increment(resp.stats.settled_source +
                                   resp.stats.settled_target);
  settled_overlay_metric_->Increment(resp.stats.settled_overlay);
  return resp;
}

}  // namespace atis::core
