#include "core/sssp.h"

#include <algorithm>
#include <queue>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<NodeId> ShortestPathTree::PathTo(NodeId v) const {
  std::vector<NodeId> path;
  if (!Reaches(v)) return path;
  for (NodeId at = v; at != graph::kInvalidNode;
       at = pred_[static_cast<size_t>(at)]) {
    path.push_back(at);
    if (at == source_) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<ShortestPathTree> SingleSourceDijkstra(const Graph& g,
                                              NodeId source) {
  if (!g.HasNode(source)) {
    return Status::InvalidArgument("unknown source node");
  }
  const size_t n = g.num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> pred(n, graph::kInvalidNode);
  dist[static_cast<size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (du > dist[static_cast<size_t>(u)]) continue;  // stale entry
    for (const graph::Edge& e : g.Neighbors(u)) {
      const double nd = du + e.cost;
      if (nd < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = nd;
        pred[static_cast<size_t>(e.to)] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  return ShortestPathTree(source, std::move(dist), std::move(pred));
}

Result<std::vector<std::vector<double>>> AllPairsDistances(const Graph& g) {
  std::vector<std::vector<double>> out;
  out.reserve(g.num_nodes());
  for (NodeId s = 0; s < static_cast<NodeId>(g.num_nodes()); ++s) {
    ATIS_ASSIGN_OR_RETURN(ShortestPathTree tree, SingleSourceDijkstra(g, s));
    out.push_back(tree.distances());
  }
  return out;
}

Result<double> GraphDiameter(const Graph& g) {
  double diameter = 0.0;
  for (NodeId s = 0; s < static_cast<NodeId>(g.num_nodes()); ++s) {
    ATIS_ASSIGN_OR_RETURN(ShortestPathTree tree, SingleSourceDijkstra(g, s));
    for (const double d : tree.distances()) {
      if (d != kInf) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace atis::core
