#include "core/advanced_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Estimator adaptor multiplying a base estimate by a constant weight.
class ScaledEstimator final : public Estimator {
 public:
  ScaledEstimator(const Estimator& base, double weight)
      : base_(base), weight_(weight) {}
  double Estimate(const graph::Point& a,
                  const graph::Point& b) const override {
    return weight_ * base_.Estimate(a, b);
  }
  double EstimateNodes(graph::NodeId from, const graph::Point& from_pt,
                       graph::NodeId to,
                       const graph::Point& to_pt) const override {
    return weight_ * base_.EstimateNodes(from, from_pt, to, to_pt);
  }
  EstimatorKind kind() const override { return base_.kind(); }

 private:
  const Estimator& base_;
  double weight_;
};

}  // namespace

PathResult WeightedAStarSearch(const Graph& g, NodeId source,
                               NodeId destination,
                               const Estimator& estimator, double weight,
                               const MemorySearchOptions& options) {
  const ScaledEstimator scaled(estimator, std::max(weight, 0.0));
  PathResult result =
      AStarSearch(g, source, destination, scaled, options);
  result.optimality_guaranteed =
      weight <= 1.0 && options.estimator_known_admissible;
  return result;
}

graph::Graph ReverseOf(const Graph& g) {
  Graph rev;
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    const graph::Point& p = g.point(u);
    rev.AddNode(p.x, p.y);
  }
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const graph::Edge& e : g.Neighbors(u)) {
      // Costs are non-negative by Graph's invariant; AddEdge cannot fail.
      (void)rev.AddEdge(e.to, u, e.cost);
    }
  }
  return rev;
}

PathResult BidirectionalDijkstra(const Graph& g, const Graph& reverse,
                                 NodeId source, NodeId destination) {
  PathResult result;
  if (!g.HasNode(source) || !g.HasNode(destination) ||
      reverse.num_nodes() != g.num_nodes()) {
    return result;
  }
  if (source == destination) {
    result.found = true;
    result.cost = 0.0;
    result.path = {source};
    return result;
  }

  const size_t n = g.num_nodes();
  struct Side {
    std::vector<double> dist;
    std::vector<NodeId> pred;
    std::vector<uint8_t> settled;
    std::priority_queue<std::pair<double, NodeId>,
                        std::vector<std::pair<double, NodeId>>,
                        std::greater<>>
        pq;
  };
  Side fwd{std::vector<double>(n, kInf), std::vector<NodeId>(n, graph::kInvalidNode),
           std::vector<uint8_t>(n, 0), {}};
  Side bwd{std::vector<double>(n, kInf), std::vector<NodeId>(n, graph::kInvalidNode),
           std::vector<uint8_t>(n, 0), {}};
  fwd.dist[static_cast<size_t>(source)] = 0.0;
  fwd.pq.emplace(0.0, source);
  bwd.dist[static_cast<size_t>(destination)] = 0.0;
  bwd.pq.emplace(0.0, destination);

  double best = kInf;
  NodeId meet = graph::kInvalidNode;

  auto scan_top = [](Side& side) {
    while (!side.pq.empty() &&
           side.pq.top().first >
               side.dist[static_cast<size_t>(side.pq.top().second)]) {
      side.pq.pop();  // stale
    }
    return side.pq.empty() ? kInf : side.pq.top().first;
  };

  while (true) {
    const double top_f = scan_top(fwd);
    const double top_b = scan_top(bwd);
    if (top_f + top_b >= best) break;  // no shorter meeting possible
    if (top_f == kInf && top_b == kInf) break;

    const bool expand_forward = top_f <= top_b;
    Side& side = expand_forward ? fwd : bwd;
    Side& other = expand_forward ? bwd : fwd;
    const Graph& edges = expand_forward ? g : reverse;

    const auto [du, u] = side.pq.top();
    side.pq.pop();
    if (side.settled[static_cast<size_t>(u)]) continue;
    side.settled[static_cast<size_t>(u)] = 1;
    ++result.stats.iterations;
    ++result.stats.nodes_expanded;

    for (const graph::Edge& e : edges.Neighbors(u)) {
      ++result.stats.nodes_generated;
      const double nd = du + e.cost;
      if (nd < side.dist[static_cast<size_t>(e.to)]) {
        ++result.stats.nodes_improved;
        side.dist[static_cast<size_t>(e.to)] = nd;
        side.pred[static_cast<size_t>(e.to)] = u;
        side.pq.emplace(nd, e.to);
      }
      // Meeting-point bookkeeping uses the relaxed label plus the other
      // side's best-known label.
      const double through =
          side.dist[static_cast<size_t>(e.to)] +
          other.dist[static_cast<size_t>(e.to)];
      if (through < best) {
        best = through;
        meet = e.to;
      }
    }
  }

  if (meet == graph::kInvalidNode) return result;  // disconnected

  result.found = true;
  result.cost = best;
  // Forward half: source..meet.
  std::vector<NodeId> path;
  for (NodeId at = meet; at != graph::kInvalidNode;
       at = fwd.pred[static_cast<size_t>(at)]) {
    path.push_back(at);
    if (at == source) break;
  }
  std::reverse(path.begin(), path.end());
  // Backward half: meet..destination (backward preds are g-successors).
  for (NodeId at = bwd.pred[static_cast<size_t>(meet)];
       at != graph::kInvalidNode;
       at = bwd.pred[static_cast<size_t>(at)]) {
    path.push_back(at);
    if (at == destination) break;
  }
  result.path = std::move(path);
  return result;
}

PathResult BidirectionalDijkstra(const Graph& g, NodeId source,
                                 NodeId destination) {
  return BidirectionalDijkstra(g, ReverseOf(g), source, destination);
}

}  // namespace atis::core
