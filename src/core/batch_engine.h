// Batched query execution: shared state for a group of route queries
// executed back-to-back on one worker (the set-at-a-time serving engine,
// ROADMAP item 3).
//
// At serving scale, concurrent queries against the same map region re-read
// the same adjacency pages; one search at a time shares only the buffer
// pool. A BatchContext amortises that cost inside a batch three ways:
//
//   1. Shared adjacency scans — the first member search to expand node u
//      performs the metered FetchAdjacency (charged, as always, to that
//      member's per-thread IoCounters); every later member touching u is
//      served the cached edge list with zero block I/O. The edge relation
//      S is read-only during serving (traffic updates are serialised
//      against batches), so the cached rows are exactly what a private
//      fetch would return — results stay bit-identical to serial runs.
//   2. Merged prefetch hints — member searches share one pages-hinted set,
//      so the batch's combined top-k frontier reaches the background
//      prefetcher once per page per batch instead of once per query.
//   3. Request coalescing (singleflight) — members with an identical
//      (source, destination, algorithm, version) key share a single
//      computation: the first occurrence runs, the rest copy its answer
//      (the route-cache epoch cannot change mid-batch, so key equality
//      implies answer equality).
//
// A batch executes sequentially on ONE worker thread, so a BatchContext
// needs no locking; concurrent batches on different workers each own a
// private context.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/db_search.h"
#include "graph/graph.h"
#include "graph/relational_graph.h"
#include "storage/page.h"

namespace atis::core {

/// Per-batch shared execution state. See the file comment for semantics.
class BatchContext {
 public:
  struct Stats {
    uint64_t adjacency_fetches = 0;     ///< metered store fetches
    uint64_t shared_adjacency_hits = 0; ///< served from the batch cache
  };

  explicit BatchContext(uint64_t batch_id) : batch_id_(batch_id) {}

  BatchContext(const BatchContext&) = delete;
  BatchContext& operator=(const BatchContext&) = delete;

  /// The batch-shared equivalent of store.FetchAdjacency(u): first call
  /// per node fetches and caches (metered), later calls are free.
  Result<std::vector<graph::RelationalGraphStore::EdgeRow>> FetchAdjacency(
      const graph::RelationalGraphStore& store, graph::NodeId u);

  /// The batch-wide pages-already-hinted set member searches dedupe their
  /// prefetch hints through (in place of the per-run private set).
  std::unordered_set<storage::PageId>* hinted_pages() { return &hinted_; }

  uint64_t batch_id() const { return batch_id_; }
  const Stats& stats() const { return stats_; }

 private:
  uint64_t batch_id_;
  Stats stats_;
  std::unordered_map<graph::NodeId,
                     std::vector<graph::RelationalGraphStore::EdgeRow>>
      adjacency_;
  std::unordered_set<storage::PageId> hinted_;
};

/// Region-affinity key for batch formation: the coarse Hilbert cell (a
/// 2^order x 2^order grid over the graph's bounding box) a node's
/// coordinates fall in. Queries whose sources share a cell expand largely
/// overlapping page sets, so grouping them into one batch maximises
/// shared-adjacency and buffer-pool reuse. Degenerate geometry (absent or
/// constant on both axes) yields region 0 for every node — batching then
/// degrades gracefully to arrival order.
class RegionIndex {
 public:
  RegionIndex(const graph::Graph& g, uint32_t order);

  /// Hilbert index of the cell holding node u (0 for unknown ids).
  uint64_t RegionOf(graph::NodeId u) const;

  uint32_t order() const { return order_; }

 private:
  const graph::Graph* g_;
  uint32_t order_;
  double min_x_ = 0.0, min_y_ = 0.0;
  double scale_x_ = 0.0, scale_y_ = 0.0;  // cells per coordinate unit
  bool degenerate_ = true;
};

/// Singleflight identity of a route query within one batch. The cache
/// epoch is constant across a batch, so it is deliberately absent: equal
/// keys compute equal answers.
struct CoalesceKey {
  graph::NodeId source = 0;
  graph::NodeId destination = 0;
  Algorithm algorithm = Algorithm::kAStar;
  AStarVersion version = AStarVersion::kV3;

  bool operator==(const CoalesceKey&) const = default;
};

/// For each member i, the index of its singleflight leader: the first
/// member with the same key. Leaders map to their own index.
std::vector<size_t> PlanCoalescing(const std::vector<CoalesceKey>& keys);

}  // namespace atis::core
