#include "core/batch_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/spatial_layout.h"

namespace atis::core {

Result<std::vector<graph::RelationalGraphStore::EdgeRow>>
BatchContext::FetchAdjacency(const graph::RelationalGraphStore& store,
                             graph::NodeId u) {
  auto it = adjacency_.find(u);
  if (it != adjacency_.end()) {
    ++stats_.shared_adjacency_hits;
    return it->second;
  }
  ATIS_ASSIGN_OR_RETURN(auto edges, store.FetchAdjacency(u));
  ++stats_.adjacency_fetches;
  adjacency_.emplace(u, edges);
  return edges;
}

RegionIndex::RegionIndex(const graph::Graph& g, uint32_t order)
    : g_(&g), order_(order) {
  if (g.num_nodes() == 0 || order_ == 0) return;
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    const graph::Point& p = g.point(static_cast<graph::NodeId>(u));
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;
  if (span_x <= 0.0 && span_y <= 0.0) return;  // no spatial signal
  const double cells = static_cast<double>(uint64_t{1} << order_);
  min_x_ = min_x;
  min_y_ = min_y;
  scale_x_ = span_x > 0.0 ? cells / span_x : 0.0;
  scale_y_ = span_y > 0.0 ? cells / span_y : 0.0;
  degenerate_ = false;
}

uint64_t RegionIndex::RegionOf(graph::NodeId u) const {
  if (degenerate_ || !g_->HasNode(u)) return 0;
  const graph::Point& p = g_->point(u);
  const uint32_t last = (uint32_t{1} << order_) - 1;
  auto cell = [last](double v, double lo, double scale) -> uint32_t {
    const double c = (v - lo) * scale;
    if (c <= 0.0) return 0;
    return std::min(last, static_cast<uint32_t>(c));
  };
  return graph::HilbertIndex(order_, cell(p.x, min_x_, scale_x_),
                             cell(p.y, min_y_, scale_y_));
}

std::vector<size_t> PlanCoalescing(const std::vector<CoalesceKey>& keys) {
  std::vector<size_t> leader(keys.size());
  // Batches are small (tens of members); a quadratic scan beats hashing a
  // four-field key and keeps first-occurrence order trivially right.
  for (size_t i = 0; i < keys.size(); ++i) {
    leader[i] = i;
    for (size_t j = 0; j < i; ++j) {
      if (keys[j] == keys[i]) {
        leader[i] = leader[j];
        break;
      }
    }
  }
  return leader;
}

}  // namespace atis::core
