#include "core/db_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include <queue>
#include <unordered_map>

#include "core/batch_engine.h"
#include "core/overlay.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atis::core {

using graph::NodeId;
using graph::NodeStatus;
using graph::RelationalGraphStore;
using relational::AsDouble;
using relational::AsInt;
using relational::Relation;
using relational::Tuple;
using storage::RecordId;

using NodeRow = RelationalGraphStore::NodeRow;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Accumulates per-statement I/O deltas into SearchStats::IoBreakdown
/// buckets (sum of buckets == total metered I/O of the run).
class PhaseMeter {
 public:
  explicit PhaseMeter(storage::IoMeter& meter)
      : meter_(meter), last_(meter.counters()) {}
  void Charge(storage::IoCounters* bucket) {
    const storage::IoCounters now = meter_.counters();
    *bucket += now - last_;
    last_ = now;
  }

 private:
  storage::IoMeter& meter_;
  storage::IoCounters last_;
};

/// Run-level observability: opens the "run" span and, on Finish, tags it
/// with the outcome and feeds the per-algorithm counters and the
/// end-to-end latency histogram of the default metrics registry. Metrics
/// are recorded per run (not per block), so the cost is a few registry
/// lookups — never part of the metered I/O.
class RunObserver {
 public:
  explicit RunObserver(std::string algorithm)
      : algorithm_(std::move(algorithm)),
        span_(algorithm_, "run"),
        started_(std::chrono::steady_clock::now()) {}

  void Finish(const PathResult& result) {
    if (finished_) return;
    finished_ = true;
    span_.Tag("iterations", result.stats.iterations);
    span_.Tag("found", result.found ? "1" : "0");
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    auto& reg = obs::MetricsRegistry::Default();
    const obs::Labels labels{{"algorithm", algorithm_}};
    reg.GetCounter("atis_search_runs_total",
                   "Database-resident search runs", labels)
        .Increment();
    reg.GetCounter("atis_search_iterations_total",
                   "Search iterations under the paper's counting rules",
                   labels)
        .Increment(result.stats.iterations);
    reg.GetHistogram("atis_query_latency_seconds",
                     "End-to-end route query wall time",
                     obs::Histogram::LatencyBounds(), labels)
        .Observe(seconds);
  }

 private:
  std::string algorithm_;
  obs::ScopedSpan span_;
  std::chrono::steady_clock::time_point started_;
  bool finished_ = false;
};

/// Deterministic selection order shared with the in-memory engine:
/// smaller f first; ties prefer larger g, then smaller node id.
bool BetterCandidate(double f_a, double g_a, NodeId a, double f_b,
                     double g_b, NodeId b) {
  if (f_a != f_b) return f_a < f_b;
  if (g_a != g_b) return g_a > g_b;
  return a < b;
}

/// Bounded best-first list of frontier candidates observed during a
/// select-min scan; ranked by BetterCandidate. Used to pick the top-k
/// nodes whose adjacency pages are worth prefetching: after the best node
/// is expanded, the runners-up are the likeliest next expansions.
class TopKFrontier {
 public:
  explicit TopKFrontier(size_t k) : k_(k) {}

  void Offer(double f, double g, NodeId id) {
    if (k_ == 0) return;
    auto pos = std::find_if(
        entries_.begin(), entries_.end(), [&](const Entry& e) {
          return BetterCandidate(f, g, id, e.f, e.g, e.id);
        });
    if (pos == entries_.end() && entries_.size() >= k_) return;
    entries_.insert(pos, Entry{f, g, id});
    if (entries_.size() > k_) entries_.pop_back();
  }

  std::vector<NodeId> ids() const {
    std::vector<NodeId> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.id);
    return out;
  }

 private:
  struct Entry {
    double f;
    double g;
    NodeId id;
  };
  size_t k_;
  std::vector<Entry> entries_;  // sorted best-first, size <= k_
};

}  // namespace

std::string_view AStarVersionName(AStarVersion v) {
  switch (v) {
    case AStarVersion::kV1:
      return "A* version 1";
    case AStarVersion::kV2:
      return "A* version 2";
    case AStarVersion::kV3:
      return "A* version 3";
    case AStarVersion::kV4:
      return "A* version 4";
    case AStarVersion::kV5:
      return "A* version 5";
  }
  return "?";
}

DbSearchEngine::DbSearchEngine(RelationalGraphStore* store,
                               storage::BufferPool* pool,
                               DbSearchOptions options)
    : store_(store), pool_(pool), options_(options) {}

Status DbSearchEngine::EndStatement() {
  if (options_.statement_at_a_time) return pool_->EvictAll();
  return Status::OK();
}

size_t DbSearchEngine::PrefetchDepth() const {
  if (options_.prefetch_depth == 0 || options_.statement_at_a_time ||
      !pool_->prefetch_workers_running()) {
    return 0;
  }
  return options_.prefetch_depth;
}

void DbSearchEngine::PrefetchFrontier(
    const std::vector<NodeId>& frontier,
    std::unordered_set<storage::PageId>* hinted) {
  std::vector<storage::PageId> pages;
  for (const NodeId u : frontier) {
    for (const storage::PageId id : store_->AdjacencyPageIds(u)) {
      if (hinted->insert(id).second) pages.push_back(id);
    }
  }
  if (!pages.empty()) pool_->Prefetch(pages);
}

Result<std::vector<NodeId>> DbSearchEngine::ReconstructFromStore(
    NodeId source, NodeId destination) {
  std::vector<NodeId> path;
  NodeId at = destination;
  const size_t guard = store_->num_nodes() + 2;
  for (size_t hops = 0; hops < guard; ++hops) {
    path.push_back(at);
    if (at == source) {
      std::reverse(path.begin(), path.end());
      return path;
    }
    ATIS_ASSIGN_OR_RETURN(auto node, store_->GetNode(at));
    if (node.second.pred == graph::kInvalidNode) break;
    at = node.second.pred;
  }
  return Status::Corruption("predecessor chain does not reach the source");
}

Result<PathResult> DbSearchEngine::Dijkstra(NodeId source,
                                            NodeId destination,
                                            const Deadline& deadline,
                                            BatchContext* batch) {
  return BestFirstStatusAttribute(source, destination, /*estimator=*/nullptr,
                                  "dijkstra", deadline, batch);
}

Result<std::vector<graph::RelationalGraphStore::EdgeRow>>
DbSearchEngine::FetchAdjacency(NodeId u, BatchContext* batch) {
  if (batch != nullptr) return batch->FetchAdjacency(*store_, u);
  return store_->FetchAdjacency(u);
}

Status DbSearchEngine::EnableLandmarks(
    std::shared_ptr<const Estimator> estimator) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("null landmark estimator");
  }
  landmark_estimator_ = std::move(estimator);
  return Status::OK();
}

Status DbSearchEngine::EnableOverlay(
    std::shared_ptr<const OverlayIndex> overlay) {
  if (overlay == nullptr || overlay->topology == nullptr ||
      overlay->customization == nullptr) {
    return Status::InvalidArgument("null or incomplete overlay index");
  }
  if (overlay->topology->num_nodes() != store_->num_nodes()) {
    return Status::InvalidArgument(
        "overlay topology does not cover this store's nodes");
  }
  overlay_ = std::move(overlay);
  return Status::OK();
}

Result<PathResult> DbSearchEngine::AStar(NodeId source, NodeId destination,
                                         AStarVersion version,
                                         const Deadline& deadline,
                                         BatchContext* batch) {
  if (version == AStarVersion::kV4) {
    if (landmark_estimator_ == nullptr) {
      return Status::FailedPrecondition(
          "A* version 4 needs EnableLandmarks() first");
    }
    return BestFirstStatusAttribute(source, destination,
                                    landmark_estimator_.get(), "astar-v4",
                                    deadline, batch);
  }
  if (version == AStarVersion::kV5) {
    if (overlay_ == nullptr) {
      return Status::FailedPrecondition(
          "A* version 5 needs EnableOverlay() first");
    }
    return OverlaySearch(source, destination, deadline, batch);
  }
  const auto estimator =
      MakeEstimator(version == AStarVersion::kV3 ? EstimatorKind::kManhattan
                                                 : EstimatorKind::kEuclidean);
  switch (version) {
    case AStarVersion::kV1:
      return AStarSeparateRelation(source, destination, *estimator,
                                   "astar-v1", deadline, batch);
    case AStarVersion::kV2:
      return BestFirstStatusAttribute(source, destination, estimator.get(),
                                      "astar-v2", deadline, batch);
    case AStarVersion::kV3:
      return BestFirstStatusAttribute(source, destination, estimator.get(),
                                      "astar-v3", deadline, batch);
    case AStarVersion::kV4:
    case AStarVersion::kV5:
      break;  // handled above
  }
  return Status::Internal("unreachable A* version");
}

Result<PathResult> DbSearchEngine::AStarCustom(NodeId source,
                                               NodeId destination,
                                               const Estimator& estimator,
                                               FrontierImpl frontier,
                                               const Deadline& deadline) {
  switch (frontier) {
    case FrontierImpl::kStatusAttribute:
      return BestFirstStatusAttribute(source, destination, &estimator,
                                      "astar-status-attribute", deadline,
                                      /*batch=*/nullptr);
    case FrontierImpl::kSeparateRelation:
      return AStarSeparateRelation(source, destination, estimator,
                                   "astar-separate-relation", deadline,
                                   /*batch=*/nullptr);
  }
  return Status::Internal("unreachable frontier implementation");
}

Result<PathResult> DbSearchEngine::BestFirstStatusAttribute(
    NodeId source, NodeId destination, const Estimator* estimator,
    std::string_view label, const Deadline& deadline, BatchContext* batch) {
  const bool allow_reopen = estimator != nullptr;  // A* yes, Dijkstra no
  RunObserver run{std::string(label)};
  storage::IoMeter& meter = pool_->disk()->meter();
  const storage::IoCounters start_io = meter.counters();
  PhaseMeter phase(meter);

  PathResult result;
  result.optimality_guaranteed =
      (estimator == nullptr) || options_.estimator_known_admissible;

  // The "statement" spans below tile the metered interval exactly: every
  // block access between start_io and the final counters() read happens
  // inside one of them, so statement-level trace deltas sum to the run's
  // IoCounters (asserted by test_io_breakdown.cc).

  // -- Initialisation (cost-model steps 1-4): reset R's working fields and
  //    open the source with path cost 0.
  {
    obs::ScopedSpan stmt("reset-R", "statement");
    ATIS_RETURN_NOT_OK(store_->ResetSearchState());
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  graph::Point dest_pt;
  {
    obs::ScopedSpan stmt("open-source", "statement");
    ATIS_ASSIGN_OR_RETURN(auto dest_node, store_->GetNode(destination));
    dest_pt = {dest_node.second.x, dest_node.second.y};
    ATIS_ASSIGN_OR_RETURN(auto src, store_->GetNode(source));
    src.second.path_cost = 0.0;
    src.second.status = NodeStatus::kOpen;
    ATIS_RETURN_NOT_OK(store_->UpdateNode(src.first, src.second));
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  phase.Charge(&result.stats.breakdown.init);

  auto h = [&](const NodeRow& row) {
    return estimator == nullptr
               ? 0.0
               : estimator->EstimateNodes(row.id, {row.x, row.y},
                                          destination, dest_pt);
  };

  // Pages hinted this run — batch-wide when executing under a
  // BatchContext, so sibling searches don't re-hint each other's pages.
  std::unordered_set<storage::PageId> private_hinted;
  std::unordered_set<storage::PageId>* hinted =
      batch != nullptr ? batch->hinted_pages() : &private_hinted;
  while (true) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("route search deadline expired");
    }
    obs::ScopedSpan iteration("iteration", "iteration");
    iteration.Tag("n", result.stats.iterations + 1);

    // -- Statement: select u from frontierSet with minimum
    //    C(s,u) [+ f(u,d)] — a scan of R over status = open. The scan
    //    doubles as the prefetch ranking pass: the top-k open nodes are
    //    the likeliest next expansions, so their adjacency pages are
    //    hinted to the background workers once we commit to expanding.
    std::optional<std::pair<RecordId, NodeRow>> best;
    double best_f = kInf;
    TopKFrontier topk(PrefetchDepth());
    {
      obs::ScopedSpan stmt("select-min", "statement");
      for (Relation::Cursor c = store_->node_relation().Scan(); c.Valid();
           c.Next()) {
        const NodeRow row = RelationalGraphStore::NodeFromTuple(c.tuple());
        if (row.status != NodeStatus::kOpen) continue;
        const double f = row.path_cost + h(row);
        topk.Offer(f, row.path_cost, row.id);
        if (!best || BetterCandidate(f, row.path_cost, row.id, best_f,
                                     best->second.path_cost,
                                     best->second.id)) {
          best = std::make_pair(c.rid(), row);
          best_f = f;
        }
      }
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.selection);

    if (!best) break;  // frontier empty: destination unreachable

    if (best->second.id == destination) {
      // Terminating selection (not counted as an iteration).
      result.found = true;
      result.cost = best->second.path_cost;
      break;
    }

    PrefetchFrontier(topk.ids(), hinted);

    // -- Statement: move u out of the frontier (REPLACE status=current).
    NodeRow u = best->second;
    u.status = NodeStatus::kCurrent;
    {
      obs::ScopedSpan stmt("mark-current", "statement");
      ATIS_RETURN_NOT_OK(store_->UpdateNode(best->first, u));
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.marking);
    ++result.stats.iterations;
    ++result.stats.nodes_expanded;

    // -- Statement: fetch u.adjacencyList via the hash index on S (shared
    //    across the batch when running under a BatchContext).
    obs::ScopedSpan adjacency_stmt("fetch-adjacency", "statement");
    ATIS_ASSIGN_OR_RETURN(auto edges, FetchAdjacency(u.id, batch));
    ATIS_RETURN_NOT_OK(EndStatement());
    adjacency_stmt.End();
    phase.Charge(&result.stats.breakdown.adjacency);

    // -- Statement: relax every <v, C(u,v)>; REPLACE improved nodes.
    {
      obs::ScopedSpan stmt("relax-neighbours", "statement");
      stmt.Tag("edges", static_cast<uint64_t>(edges.size()));
      for (const auto& e : edges) {
        ++result.stats.nodes_generated;
        ATIS_ASSIGN_OR_RETURN(auto vn, store_->GetNode(e.end));
        const double nd = u.path_cost + e.cost;
        if (nd < vn.second.path_cost) {
          ++result.stats.nodes_improved;
          if (vn.second.status == NodeStatus::kClosed && !allow_reopen) {
            continue;  // Dijkstra: explored nodes are final
          }
          if (vn.second.status == NodeStatus::kClosed) {
            ++result.stats.reopenings;
          }
          vn.second.path_cost = nd;
          vn.second.pred = u.id;
          vn.second.status = NodeStatus::kOpen;
          ATIS_RETURN_NOT_OK(store_->UpdateNode(vn.first, vn.second));
        }
      }
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.relaxation);

    // -- Statement: close u (REPLACE status=closed).
    u.status = NodeStatus::kClosed;
    {
      obs::ScopedSpan stmt("mark-closed", "statement");
      ATIS_RETURN_NOT_OK(store_->UpdateNode(best->first, u));
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.marking);
  }

  result.stats.io = meter.counters() - start_io;
  result.stats.cost_units = result.stats.io.Cost(options_.cost_params);
  if (result.found) {
    ATIS_ASSIGN_OR_RETURN(result.path,
                          ReconstructFromStore(source, destination));
  }
  run.Finish(result);
  return result;
}

namespace {

/// How an overlay A* label reached its node (drives path splicing).
enum class OverlayArc : int8_t {
  kSeed,      ///< source -> boundary of cell(source), rev table
  kShortcut,  ///< boundary -> boundary inside one cell, fwd table
  kCross,     ///< an original cell-crossing edge
  kFinish,    ///< boundary of cell(destination) -> destination, fwd table
};

struct OverlayLabel {
  double g = std::numeric_limits<double>::infinity();
  NodeId pred = graph::kInvalidNode;
  OverlayArc via = OverlayArc::kSeed;
};

/// Virtual destination of the overlay A*: reached by kFinish arcs from
/// the destination cell's boundary. Distinct from kInvalidNode (-1).
constexpr NodeId kOverlayTarget = -2;

}  // namespace

Result<PathResult> DbSearchEngine::OverlaySearch(NodeId source,
                                                 NodeId destination,
                                                 const Deadline& deadline,
                                                 BatchContext* batch) {
  // Accepted for interface uniformity: the overlay walks in-memory
  // tables, so there is no per-node adjacency scan to share with a batch.
  (void)batch;
  const OverlayTopology& topo = *overlay_->topology;
  const OverlayCustomization& cust = *overlay_->customization;
  RunObserver run{"astar-v5"};
  storage::IoMeter& meter = pool_->disk()->meter();
  const storage::IoCounters start_io = meter.counters();
  PhaseMeter phase(meter);

  PathResult result;
  result.optimality_guaranteed = (landmark_estimator_ == nullptr) ||
                                 options_.estimator_known_admissible;

  // -- Statement: probe both endpoints (validity + destination geometry).
  //    For a cross-cell query this is the run's only store access: the
  //    rest of the search walks the in-memory customized tables.
  graph::Point dest_pt;
  {
    obs::ScopedSpan stmt("probe-endpoints", "statement");
    ATIS_ASSIGN_OR_RETURN(auto dst, store_->GetNode(destination));
    dest_pt = {dst.second.x, dst.second.y};
    ATIS_ASSIGN_OR_RETURN(auto src, store_->GetNode(source));
    (void)src;
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  phase.Charge(&result.stats.breakdown.init);

  if (source == destination) {
    result.found = true;
    result.cost = 0.0;
    result.path = {source};
    result.stats.io = meter.counters() - start_io;
    result.stats.cost_units = result.stats.io.Cost(options_.cost_params);
    run.Finish(result);
    return result;
  }

  const int32_t cs = topo.CellOf(source);
  const int32_t cd = topo.CellOf(destination);

  auto h = [&](NodeId u) {
    return landmark_estimator_ == nullptr
               ? 0.0
               : landmark_estimator_->EstimateNodes(u, topo.point(u),
                                                    destination, dest_pt);
  };

  // -- Same-cell pairs: a shortest path that never leaves the cell has no
  //    boundary decomposition, so consult the customized in-cell
  //    all-pairs table — no statements, no expansions; the search work
  //    was paid during customization. (The overlay pass below still
  //    covers leave-and-return routes; the cheaper candidate wins, and
  //    the in-cell cost bounds the overlay search from above.)
  double direct_cost = kInf;
  std::vector<NodeId> direct_path;
  if (cs == cd) {
    const OverlayTopology::Cell& cell = topo.cell(cs);
    const OverlayCustomization::CellTables& tables = cust.cell(cs);
    const auto ms = static_cast<size_t>(topo.MemberIndexOf(source));
    const auto md = static_cast<size_t>(topo.MemberIndexOf(destination));
    if (tables.incell_dist[ms][md] < kInf) {
      direct_cost = tables.incell_dist[ms][md];
      std::vector<int32_t> seg;
      for (auto mi = static_cast<int32_t>(md); mi != -1;
           mi = tables.incell_pred[ms][static_cast<size_t>(mi)]) {
        seg.push_back(mi);
      }
      for (auto it = seg.rbegin(); it != seg.rend(); ++it) {
        direct_path.push_back(cell.members[static_cast<size_t>(*it)]);
      }
    }
  }
  phase.Charge(&result.stats.breakdown.adjacency);

  // -- Overlay A*: boundary nodes only, plus the virtual target. Arcs are
  //    customized shortcuts, original cross edges, and the destination
  //    cell's finishing column; the source cell's reverse column seeds
  //    the frontier. No store I/O — every arc is a table lookup.
  std::unordered_map<NodeId, OverlayLabel> labels;
  struct Item {
    double f;
    double g;
    NodeId id;
  };
  const auto worse = [](const Item& a, const Item& b) {
    return BetterCandidate(b.f, b.g, b.id, a.f, a.g, a.id);
  };
  std::priority_queue<Item, std::vector<Item>, decltype(worse)> open(worse);
  const auto relax = [&](NodeId v, double g, NodeId from, OverlayArc via) {
    ++result.stats.nodes_generated;
    OverlayLabel& lab = labels[v];
    if (g < lab.g) {
      if (lab.g < kInf) ++result.stats.nodes_improved;
      lab = {g, from, via};
      open.push({g + (v == kOverlayTarget ? 0.0 : h(v)), g, v});
    }
  };
  {
    const OverlayTopology::Cell& cell = topo.cell(cs);
    const OverlayCustomization::CellTables& tables = cust.cell(cs);
    const auto ms = static_cast<size_t>(topo.MemberIndexOf(source));
    for (size_t bi = 0; bi < cell.boundary.size(); ++bi) {
      const double w = tables.rev_dist[bi][ms];
      if (w < kInf) {
        relax(cell.boundary[bi], w, graph::kInvalidNode, OverlayArc::kSeed);
      }
    }
  }
  uint64_t overlay_expansions = 0;
  std::unordered_map<NodeId, OverlayLabel>::iterator target_hit =
      labels.end();
  {
    obs::ScopedSpan stmt("overlay-relax", "statement");
    std::unordered_set<NodeId> closed;
    while (!open.empty()) {
      const Item item = open.top();
      open.pop();
      if (!closed.insert(item.id).second) continue;  // stale PQ entry
      if (item.id == kOverlayTarget) {
        target_hit = labels.find(item.id);
        break;  // terminating selection (not counted as an iteration)
      }
      // Every remaining label has f >= item.f; with an admissible h that
      // lower-bounds its true cost, so nothing in the queue can beat the
      // in-cell candidate: the direct route wins, stop settling.
      if (item.f >= direct_cost) break;
      if (deadline.expired()) {
        return Status::DeadlineExceeded("route search deadline expired");
      }
      ++result.stats.iterations;
      ++result.stats.nodes_expanded;
      ++overlay_expansions;
      const NodeId u = item.id;
      const double gu = item.g;
      const int32_t c = topo.CellOf(u);
      const OverlayTopology::Cell& cell = topo.cell(c);
      const OverlayCustomization::CellTables& tables = cust.cell(c);
      const auto bi = static_cast<size_t>(topo.BoundaryIndexOf(u));
      for (const int32_t bj : cell.shortcut_targets[bi]) {
        const auto mj =
            static_cast<size_t>(cell.boundary_member_idx[static_cast<size_t>(
                bj)]);
        const double w = tables.fwd_dist[bi][mj];
        if (w < kInf) {
          relax(cell.boundary[static_cast<size_t>(bj)], gu + w, u,
                OverlayArc::kShortcut);
        }
      }
      for (const graph::Edge& e : cust.cross_arcs(u)) {
        relax(e.to, gu + e.cost, u, OverlayArc::kCross);
      }
      if (c == cd) {
        const auto md = static_cast<size_t>(topo.MemberIndexOf(destination));
        const double w = tables.fwd_dist[bi][md];
        if (w < kInf) {
          relax(kOverlayTarget, gu + w, u, OverlayArc::kFinish);
        }
      }
    }
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  phase.Charge(&result.stats.breakdown.selection);
  obs::MetricsRegistry::Default()
      .GetCounter("atis_overlay_expansions_total",
                  "Overlay boundary nodes settled by Version 5 searches")
      .Increment(overlay_expansions);

  const double overlay_cost =
      target_hit != labels.end() ? target_hit->second.g : kInf;
  result.stats.io = meter.counters() - start_io;
  result.stats.cost_units = result.stats.io.Cost(options_.cost_params);

  if (direct_cost <= overlay_cost && direct_cost < kInf) {
    result.found = true;
    result.cost = direct_cost;
    result.path = std::move(direct_path);
    run.Finish(result);
    return result;
  }
  if (overlay_cost == kInf) {
    run.Finish(result);  // unreachable
    return result;
  }

  // -- Splice the overlay route back into base-graph nodes: walk the
  //    label chain target -> source, then emit each arc's intra-cell
  //    segment from the customized parent trees.
  std::vector<NodeId> bnodes;  // boundary nodes, destination side first
  for (NodeId at = target_hit->second.pred; at != graph::kInvalidNode;
       at = labels.at(at).pred) {
    bnodes.push_back(at);
  }
  std::reverse(bnodes.begin(), bnodes.end());
  // Appends the intra-cell path boundary[bi] -> to (exclusive of the
  // boundary node itself) by walking cell c's forward parent tree.
  const auto append_fwd = [&](int32_t c, size_t bi,
                              NodeId to) -> Status {
    const OverlayTopology::Cell& cell = topo.cell(c);
    const OverlayCustomization::CellTables& tables = cust.cell(c);
    const int32_t root = cell.boundary_member_idx[bi];
    std::vector<int32_t> seg;
    for (int32_t mi = topo.MemberIndexOf(to); mi != root;
         mi = tables.fwd_pred[bi][static_cast<size_t>(mi)]) {
      if (mi < 0) {
        return Status::Corruption("overlay parent tree does not reach its"
                                  " boundary root");
      }
      seg.push_back(mi);
    }
    for (auto it = seg.rbegin(); it != seg.rend(); ++it) {
      result.path.push_back(cell.members[static_cast<size_t>(*it)]);
    }
    return Status::OK();
  };

  result.found = true;
  result.cost = overlay_cost;
  result.path = {source};
  {
    // Seed segment: source -> bnodes[0] via the reverse successor tree.
    const OverlayTopology::Cell& cell = topo.cell(cs);
    const OverlayCustomization::CellTables& tables = cust.cell(cs);
    const auto bi = static_cast<size_t>(topo.BoundaryIndexOf(bnodes.front()));
    const int32_t root = cell.boundary_member_idx[bi];
    for (int32_t mi = topo.MemberIndexOf(source); mi != root;) {
      mi = tables.rev_succ[bi][static_cast<size_t>(mi)];
      if (mi < 0) {
        return Status::Corruption("overlay successor tree does not reach"
                                  " its boundary root");
      }
      result.path.push_back(cell.members[static_cast<size_t>(mi)]);
    }
  }
  for (size_t i = 1; i < bnodes.size(); ++i) {
    const OverlayLabel& lab = labels.at(bnodes[i]);
    switch (lab.via) {
      case OverlayArc::kShortcut: {
        const int32_t c = topo.CellOf(bnodes[i - 1]);
        ATIS_RETURN_NOT_OK(append_fwd(
            c, static_cast<size_t>(topo.BoundaryIndexOf(bnodes[i - 1])),
            bnodes[i]));
        break;
      }
      case OverlayArc::kCross:
        result.path.push_back(bnodes[i]);
        break;
      default:
        return Status::Corruption("unexpected arc type inside the overlay"
                                  " label chain");
    }
  }
  ATIS_RETURN_NOT_OK(append_fwd(
      cd, static_cast<size_t>(topo.BoundaryIndexOf(bnodes.back())),
      destination));
  run.Finish(result);
  return result;
}

Result<PathResult> DbSearchEngine::AStarSeparateRelation(
    NodeId source, NodeId destination, const Estimator& estimator,
    std::string_view label, const Deadline& deadline, BatchContext* batch) {
  RunObserver run{std::string(label)};
  storage::IoMeter& meter = pool_->disk()->meter();
  const storage::IoCounters start_io = meter.counters();
  PhaseMeter phase(meter);

  PathResult result;
  result.optimality_guaranteed = options_.estimator_known_admissible;

  // As in BestFirstStatusAttribute, the "statement" spans tile the metered
  // interval [start_io, final counters() read] exactly; here that interval
  // also covers reconstruction and temporary-relation cleanup.

  // Version 1 grows a private resultant relation R1 (same schema as R)
  // incrementally and keeps the frontier in a separate relation F. Both
  // carry hash indexes on node_id whose maintenance is exactly the
  // APPEND/DELETE overhead the paper attributes to this version.
  obs::ScopedSpan create_stmt("create-temps", "statement");
  Relation r1("R1", RelationalGraphStore::NodeSchema(), pool_,
              /*charge_create=*/true);
  ATIS_RETURN_NOT_OK(r1.CreateHashIndex(RelationalGraphStore::kNodeIdField,
                                        /*num_buckets=*/64));
  const relational::Schema f_schema(
      {{"node_id", relational::FieldType::kInt16},
       {"g_cost", relational::FieldType::kFloat},
       {"f_cost", relational::FieldType::kFloat}});
  Relation frontier("F", f_schema, pool_, /*charge_create=*/true);
  ATIS_RETURN_NOT_OK(
      frontier.CreateHashIndex("node_id", /*num_buckets=*/64));
  ATIS_RETURN_NOT_OK(EndStatement());
  create_stmt.End();

  obs::ScopedSpan seed_stmt("seed-source", "statement");
  ATIS_ASSIGN_OR_RETURN(auto dest_node, store_->GetNode(destination));
  const graph::Point dest_pt{dest_node.second.x, dest_node.second.y};
  auto h = [&](const NodeRow& row) {
    return estimator.EstimateNodes(row.id, {row.x, row.y}, destination,
                                   dest_pt);
  };

  // Seed with the source (master coordinates come from the store's R).
  ATIS_ASSIGN_OR_RETURN(auto src, store_->GetNode(source));
  NodeRow srow = src.second;
  srow.path_cost = 0.0;
  srow.status = NodeStatus::kOpen;
  ATIS_RETURN_NOT_OK(
      r1.Insert(RelationalGraphStore::ToTuple(srow)).status());
  ATIS_RETURN_NOT_OK(relational::Append(
      &frontier, Tuple{static_cast<int64_t>(source), 0.0, h(srow)}));
  ATIS_RETURN_NOT_OK(EndStatement());
  seed_stmt.End();
  phase.Charge(&result.stats.breakdown.init);

  auto r1_get = [&](NodeId v) -> Result<std::optional<
                                  std::pair<RecordId, NodeRow>>> {
    ATIS_ASSIGN_OR_RETURN(
        auto rids, r1.IndexLookup(RelationalGraphStore::kNodeIdField, v));
    if (rids.empty()) {
      return std::optional<std::pair<RecordId, NodeRow>>{};
    }
    ATIS_ASSIGN_OR_RETURN(Tuple t, r1.Get(rids.front()));
    return std::optional<std::pair<RecordId, NodeRow>>(
        std::make_pair(rids.front(),
                       RelationalGraphStore::NodeFromTuple(t)));
  };

  // Pages hinted this run (batch-wide under a BatchContext, as in
  // BestFirstStatusAttribute).
  std::unordered_set<storage::PageId> private_hinted;
  std::unordered_set<storage::PageId>* hinted =
      batch != nullptr ? batch->hinted_pages() : &private_hinted;
  while (true) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("route search deadline expired");
    }
    obs::ScopedSpan iteration("iteration", "iteration");
    iteration.Tag("n", result.stats.iterations + 1);

    // -- Statement: scan F for the minimum f entry (and the prefetch
    //    top-k, as in BestFirstStatusAttribute).
    std::optional<std::pair<RecordId, Tuple>> best;
    TopKFrontier topk(PrefetchDepth());
    {
      obs::ScopedSpan stmt("select-min", "statement");
      for (Relation::Cursor c = frontier.Scan(); c.Valid(); c.Next()) {
        Tuple t = c.tuple();
        topk.Offer(AsDouble(t[2]), AsDouble(t[1]),
                   static_cast<NodeId>(AsInt(t[0])));
        if (!best ||
            BetterCandidate(AsDouble(t[2]), AsDouble(t[1]),
                            static_cast<NodeId>(AsInt(t[0])),
                            AsDouble(best->second[2]),
                            AsDouble(best->second[1]),
                            static_cast<NodeId>(AsInt(best->second[0])))) {
          best = std::make_pair(c.rid(), std::move(t));
        }
      }
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.selection);
    if (!best) break;

    const NodeId uid = static_cast<NodeId>(AsInt(best->second[0]));
    const double ug = AsDouble(best->second[1]);
    PrefetchFrontier(topk.ids(), hinted);

    // -- Statement: DELETE the selected tuple from F.
    {
      obs::ScopedSpan stmt("delete-min", "statement");
      ATIS_RETURN_NOT_OK(frontier.Delete(best->first));
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.marking);

    // Stale frontier tuples (duplicates-allowed policy) surface here: the
    // R1 row already records a cheaper path, so this selection is a
    // redundant iteration.
    obs::ScopedSpan probe_stmt("probe-r1", "statement");
    ATIS_ASSIGN_OR_RETURN(auto ru, r1_get(uid));
    probe_stmt.End();
    if (!ru) return Status::Corruption("frontier node missing from R1");
    if (options_.duplicate_policy == DuplicatePolicy::kAllow &&
        (ug > ru->second.path_cost ||
         ru->second.status == NodeStatus::kClosed)) {
      ++result.stats.iterations;
      continue;
    }

    if (uid == destination) {
      result.found = true;
      result.cost = ru->second.path_cost;
      break;
    }

    NodeRow u = ru->second;
    ++result.stats.iterations;
    ++result.stats.nodes_expanded;

    // -- Statement: fetch adjacency from S.
    obs::ScopedSpan adjacency_stmt("fetch-adjacency", "statement");
    ATIS_ASSIGN_OR_RETURN(auto edges, FetchAdjacency(uid, batch));
    ATIS_RETURN_NOT_OK(EndStatement());
    adjacency_stmt.End();
    phase.Charge(&result.stats.breakdown.adjacency);

    // -- Statement: relax neighbours into R1 / F.
    obs::ScopedSpan relax_stmt("relax-neighbours", "statement");
    relax_stmt.Tag("edges", static_cast<uint64_t>(edges.size()));
    for (const auto& e : edges) {
      ++result.stats.nodes_generated;
      const double nd = u.path_cost + e.cost;
      ATIS_ASSIGN_OR_RETURN(auto rv, r1_get(e.end));
      if (!rv) {
        // First sight of v: pull its coordinates from the master R,
        // APPEND a row to R1 and a frontier tuple to F.
        ++result.stats.nodes_improved;
        ATIS_ASSIGN_OR_RETURN(auto master, store_->GetNode(e.end));
        NodeRow vrow = master.second;
        vrow.path_cost = nd;
        vrow.pred = uid;
        vrow.status = NodeStatus::kOpen;
        ATIS_RETURN_NOT_OK(
            r1.Insert(RelationalGraphStore::ToTuple(vrow)).status());
        ATIS_RETURN_NOT_OK(relational::Append(
            &frontier,
            Tuple{static_cast<int64_t>(e.end), nd, nd + h(vrow)}));
        continue;
      }
      if (nd >= rv->second.path_cost) continue;
      ++result.stats.nodes_improved;
      NodeRow vrow = rv->second;
      const NodeStatus prev = vrow.status;
      vrow.path_cost = nd;
      vrow.pred = uid;
      vrow.status = NodeStatus::kOpen;
      ATIS_RETURN_NOT_OK(
          r1.Update(rv->first, RelationalGraphStore::ToTuple(vrow)));
      if (prev == NodeStatus::kClosed) ++result.stats.reopenings;

      const Tuple fresh{static_cast<int64_t>(e.end), nd, nd + h(vrow)};
      switch (options_.duplicate_policy) {
        case DuplicatePolicy::kAvoid: {
          // Membership check via F's index; DELETE the old tuple first.
          ATIS_ASSIGN_OR_RETURN(auto frids,
                                frontier.IndexLookup("node_id", e.end));
          for (const RecordId frid : frids) {
            ATIS_RETURN_NOT_OK(frontier.Delete(frid));
          }
          ATIS_RETURN_NOT_OK(relational::Append(&frontier, fresh));
          break;
        }
        case DuplicatePolicy::kEliminate: {
          // Insert first, then purge older duplicates.
          ATIS_RETURN_NOT_OK(relational::Append(&frontier, fresh));
          ATIS_ASSIGN_OR_RETURN(auto frids,
                                frontier.IndexLookup("node_id", e.end));
          for (const RecordId frid : frids) {
            ATIS_ASSIGN_OR_RETURN(Tuple t, frontier.Get(frid));
            if (AsDouble(t[1]) > nd) {
              ATIS_RETURN_NOT_OK(frontier.Delete(frid));
            }
          }
          break;
        }
        case DuplicatePolicy::kAllow:
          ATIS_RETURN_NOT_OK(relational::Append(&frontier, fresh));
          break;
      }
    }
    ATIS_RETURN_NOT_OK(EndStatement());
    relax_stmt.End();
    phase.Charge(&result.stats.breakdown.relaxation);

    // -- Statement: close u in R1.
    {
      obs::ScopedSpan stmt("mark-closed", "statement");
      u.path_cost = ru->second.path_cost;
      u.status = NodeStatus::kClosed;
      ATIS_RETURN_NOT_OK(
          r1.Update(ru->first, RelationalGraphStore::ToTuple(u)));
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.marking);

    result.stats.frontier_peak = std::max<uint64_t>(
        result.stats.frontier_peak, frontier.num_tuples());
  }

  // Drop the temporaries (charged), reconstruct, then snapshot stats —
  // this version's metered interval includes reconstruction and cleanup.
  obs::ScopedSpan cleanup_stmt("cleanup", "statement");
  ATIS_RETURN_NOT_OK(EndStatement());

  // Reconstruct before dropping R1 but snapshot the meter first: route
  // assembly is not part of the search cost.
  std::vector<NodeId> path;
  if (result.found) {
    NodeId at = destination;
    const size_t limit = store_->num_nodes() + 2;
    for (size_t i = 0; i < limit; ++i) {
      path.push_back(at);
      if (at == source) break;
      ATIS_ASSIGN_OR_RETURN(auto rn, r1_get(at));
      if (!rn || rn->second.pred == graph::kInvalidNode) {
        return Status::Corruption("broken predecessor chain in R1");
      }
      at = rn->second.pred;
    }
    std::reverse(path.begin(), path.end());
  }

  ATIS_RETURN_NOT_OK(r1.Clear(/*charge=*/true));
  ATIS_RETURN_NOT_OK(frontier.Clear(/*charge=*/true));
  ATIS_RETURN_NOT_OK(EndStatement());
  cleanup_stmt.End();
  phase.Charge(&result.stats.breakdown.cleanup);

  result.stats.io = meter.counters() - start_io;
  result.stats.cost_units = result.stats.io.Cost(options_.cost_params);
  result.path = std::move(path);
  run.Finish(result);
  return result;
}

Result<PathResult> DbSearchEngine::Iterative(NodeId source,
                                             NodeId destination,
                                             const Deadline& deadline,
                                             BatchContext* batch) {
  // The join-based plan reaches neighbours set-at-a-time already; there is
  // no per-node adjacency fetch for the batch to share.
  (void)batch;
  RunObserver run("iterative");
  storage::IoMeter& meter = pool_->disk()->meter();
  const storage::IoCounters start_io = meter.counters();
  PhaseMeter phase(meter);

  PathResult result;

  // As elsewhere, the "statement" spans tile the metered interval exactly
  // (see BestFirstStatusAttribute).

  // -- Initialisation (Table 2, steps 1-4): reset R, mark source current.
  {
    obs::ScopedSpan stmt("reset-R", "statement");
    ATIS_RETURN_NOT_OK(store_->ResetSearchState());
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  {
    obs::ScopedSpan stmt("open-source", "statement");
    ATIS_ASSIGN_OR_RETURN(auto src, store_->GetNode(source));
    src.second.path_cost = 0.0;
    src.second.status = NodeStatus::kCurrent;
    ATIS_RETURN_NOT_OK(store_->UpdateNode(src.first, src.second));
    ATIS_RETURN_NOT_OK(EndStatement());
  }
  phase.Charge(&result.stats.breakdown.init);

  Relation& r = store_->node_relation();
  Relation& s = store_->edge_relation();

  while (true) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("route search deadline expired");
    }
    obs::ScopedSpan iteration("iteration", "iteration");
    iteration.Tag("n", result.stats.iterations + 1);

    // -- Step 5: fetch all current nodes from R (scan).
    obs::ScopedSpan select_stmt("select-current", "statement");
    ATIS_ASSIGN_OR_RETURN(
        auto current,
        relational::SelectScan(r, [](const Tuple& t) {
          return AsInt(t[3]) == static_cast<int64_t>(NodeStatus::kCurrent);
        }));
    ATIS_RETURN_NOT_OK(EndStatement());
    select_stmt.End();
    phase.Charge(&result.stats.breakdown.selection);
    if (current.empty()) break;

    ++result.stats.iterations;
    result.stats.frontier_peak =
        std::max<uint64_t>(result.stats.frontier_peak, current.size());
    result.stats.nodes_expanded += current.size();

    // -- Step 6: join current nodes with S to reach their neighbours.
    //    The current nodes are materialised as a temporary relation, as in
    //    the relational formulation. They are ordered by node id first so
    //    the join's output order — and with it the equal-cost predecessor
    //    tie-breaks of step 7 — does not depend on R's physical layout
    //    (a no-op under kRowOrder, where the scan already yields id
    //    order; under kHilbert it restores that order).
    std::sort(current.begin(), current.end(),
              [](const relational::MatchedTuple& a,
                 const relational::MatchedTuple& b) {
                return AsInt(a.tuple[0]) < AsInt(b.tuple[0]);
              });
    obs::ScopedSpan join_stmt("materialise-and-join", "statement");
    join_stmt.Tag("current_nodes", static_cast<uint64_t>(current.size()));
    Relation cur("C", RelationalGraphStore::NodeSchema(), pool_,
                 /*charge_create=*/true);
    for (const auto& m : current) {
      ATIS_RETURN_NOT_OK(cur.Insert(m.tuple).status());
    }
    ATIS_ASSIGN_OR_RETURN(
        auto join,
        relational::Join(cur, s,
                         {RelationalGraphStore::kNodeIdField,
                          RelationalGraphStore::kBeginField},
                         options_.join_strategy, options_.cost_params,
                         "JOIN"));
    ATIS_RETURN_NOT_OK(EndStatement());
    join_stmt.End();
    phase.Charge(&result.stats.breakdown.adjacency);

    // -- Step 7: update status/path of improved neighbours in R.
    //    Join tuple layout: fields 0..5 from C (node row), 6..8 from S.
    {
      obs::ScopedSpan stmt("relax-neighbours", "statement");
      for (Relation::Cursor c = join->Scan(); c.Valid(); c.Next()) {
        const Tuple t = c.tuple();
        ++result.stats.nodes_generated;
        const double nd = AsDouble(t[5]) + AsDouble(t[8]);
        const NodeId v = static_cast<NodeId>(AsInt(t[7]));
        ATIS_ASSIGN_OR_RETURN(auto vn, store_->GetNode(v));
        if (nd < vn.second.path_cost) {
          ++result.stats.nodes_improved;
          if (vn.second.status == NodeStatus::kClosed) {
            ++result.stats.reopenings;
          }
          vn.second.path_cost = nd;
          vn.second.pred = static_cast<NodeId>(AsInt(t[0]));
          vn.second.status = NodeStatus::kOpen;
          ATIS_RETURN_NOT_OK(store_->UpdateNode(vn.first, vn.second));
        }
      }
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.relaxation);

    // Drop the temporaries.
    {
      obs::ScopedSpan stmt("drop-temps", "statement");
      ATIS_RETURN_NOT_OK(cur.Clear(/*charge=*/true));
      ATIS_RETURN_NOT_OK(join->Clear(/*charge=*/true));
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.cleanup);

    // -- Step 7b/8: REPLACE current -> closed, open -> current, then the
    //    count of current nodes decides termination (next round's step 5
    //    doubles as the count scan).
    {
      obs::ScopedSpan stmt("rotate-status", "statement");
      ATIS_RETURN_NOT_OK(
          relational::Replace(
              &r,
              [](const Tuple& t) {
                const auto st = static_cast<NodeStatus>(AsInt(t[3]));
                return st == NodeStatus::kCurrent ||
                       st == NodeStatus::kOpen;
              },
              [](Tuple* t) {
                const auto st = static_cast<NodeStatus>(AsInt((*t)[3]));
                (*t)[3] = static_cast<int64_t>(st == NodeStatus::kCurrent
                                                   ? NodeStatus::kClosed
                                                   : NodeStatus::kCurrent);
              })
              .status());
      ATIS_RETURN_NOT_OK(EndStatement());
    }
    phase.Charge(&result.stats.breakdown.marking);
  }

  obs::ScopedSpan probe_stmt("probe-destination", "statement");
  ATIS_ASSIGN_OR_RETURN(auto dest, store_->GetNode(destination));
  probe_stmt.End();
  phase.Charge(&result.stats.breakdown.cleanup);
  result.stats.io = meter.counters() - start_io;
  result.stats.cost_units = result.stats.io.Cost(options_.cost_params);
  if (dest.second.path_cost != kInf) {
    result.found = true;
    result.cost = dest.second.path_cost;
    ATIS_ASSIGN_OR_RETURN(result.path,
                          ReconstructFromStore(source, destination));
  }
  run.Finish(result);
  return result;
}

}  // namespace atis::core
