// Route evaluation against the database-resident map.
//
// Section 1.1 names route *evaluation* — "find the attributes of a given
// route between two points" — as the second ATIS service next to route
// computation. For a database-resident map this is a sequence of indexed
// probes of the edge relation S, one per segment, so it has a block-I/O
// cost of its own; this module performs the evaluation through the
// metered engine and reports that cost.
#pragma once

#include <vector>

#include "core/route_service.h"
#include "graph/relational_graph.h"

namespace atis::core {

struct DbRouteEvaluation {
  RouteEvaluation evaluation;
  storage::IoCounters io;   ///< block I/O spent evaluating
  double cost_units = 0.0;  ///< io in cost-parameter units
};

/// Evaluates `path` against the store: each consecutive pair is resolved
/// through S's hash index (cheapest parallel segment wins) and node
/// coordinates through R's ISAM index. A missing segment yields
/// evaluation.valid == false, mirroring the in-memory EvaluateRoute.
Result<DbRouteEvaluation> DbEvaluateRoute(
    const graph::RelationalGraphStore& store,
    const std::vector<graph::NodeId>& path,
    const storage::CostParams& params = {});

}  // namespace atis::core
