// Traffic-aware route-result cache for the serving path.
//
// ATIS traffic is highly repetitive — many travellers ask for the same
// (source, destination) pairs — so RouteServer memoises full PathResults in
// a sharded LRU. Correctness under live traffic comes from an epoch
// counter: every cached entry records the cost-model epoch it was computed
// under, a traffic update bumps the epoch (one atomic increment, no
// scanning), and a lookup that hits an older-epoch entry evicts it as
// stale instead of serving it. A result computed concurrently with an
// update is likewise dropped at insert time — its observed epoch no longer
// matches — so a stale path is never served, only recomputed.
//
// Region-scoped invalidation: entries may carry the set of overlay cells
// (core/overlay.h) their path touches. A traffic update that only *raises*
// costs inside known cells can then call InvalidateRegions with those
// cells instead of BumpEpoch: warm routes through untouched regions keep
// serving, and only intersecting entries go stale. This is sound for cost
// increases only — an increase cannot improve a route that avoids the
// touched cells, but a decrease can, so cost decreases must still bump
// the global epoch. Results computed concurrently with a region
// invalidation are dropped at insert time via the invalidation sequence
// number (capture invalidation_seq() with epoch() before computing).
//
// Sharding: entries hash to independent shards, each with its own mutex,
// LRU list, and capacity slice, so concurrent workers do not serialise on
// one lock. Thread-safe throughout.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/db_search.h"
#include "core/search_types.h"
#include "graph/graph.h"

namespace atis::core {

class RouteCache {
 public:
  struct Options {
    /// Total entries across all shards (>= 1 per shard after splitting).
    size_t capacity = 4096;
    /// Independent mutex+LRU shards; clamped to [1, capacity].
    size_t shards = 8;
  };

  /// Cache key: the query identity. The algorithm/version pair is part of
  /// the key because different versions report different stats and (for
  /// inadmissible estimators) may return different paths.
  struct Key {
    graph::NodeId source = 0;
    graph::NodeId destination = 0;
    Algorithm algorithm = Algorithm::kAStar;
    AStarVersion version = AStarVersion::kV3;

    bool operator==(const Key&) const = default;
  };

  /// Monotonic counters, aggregated over all shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;            ///< includes stale evictions
    uint64_t stale_evictions = 0;   ///< hits invalidated by an epoch bump
    uint64_t lru_evictions = 0;
    uint64_t insertions = 0;
    uint64_t stale_inserts_dropped = 0;
    uint64_t stale_serves = 0;      ///< stale entries handed out on purpose
    uint64_t region_invalidations = 0;  ///< InvalidateRegions calls
    /// Entries marked stale by region-scoped invalidation.
    uint64_t region_entries_invalidated = 0;
  };

  struct LookupResult {
    std::optional<PathResult> result;  ///< engaged on a fresh hit
    bool stale_evicted = false;        ///< an entry died of old age here
  };

  struct StaleLookupResult {
    std::optional<PathResult> result;  ///< engaged on any hit, even stale
    bool stale = false;                ///< computed under an older epoch
  };

  RouteCache();  // default Options
  explicit RouteCache(Options options);

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// Current cost-model epoch. Capture it *before* computing a result and
  /// pass it to Insert so results raced by a traffic update are dropped.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Invalidates every cached route (entries are evicted lazily on their
  /// next lookup). Call on any traffic/cost-model change — mandatory for
  /// cost *decreases*, which InvalidateRegions cannot cover soundly.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Sequence number of region-scoped invalidations. Capture it together
  /// with epoch() before computing a result; Insert drops results whose
  /// observed sequence is out of date (an invalidation ran mid-compute).
  uint64_t invalidation_seq() const {
    return invalidation_seq_.load(std::memory_order_acquire);
  }

  /// Marks stale every entry whose region set intersects `regions`
  /// (overlay cell ids), leaving routes through untouched regions warm.
  /// O(cache size) scan under per-shard locks — paid only on traffic
  /// updates. Sound for cost increases only; see the file comment.
  /// Returns the number of entries invalidated.
  size_t InvalidateRegions(std::span<const int32_t> regions);

  /// Fresh lookup. A stale entry (older epoch) reports a miss; with
  /// `evict_stale` it is also dropped on the spot. Degraded-capable
  /// servers pass evict_stale=false so the entry survives as fallback
  /// material for LookupAllowStale until a successful recompute
  /// overwrites it.
  LookupResult Lookup(const Key& key, bool evict_stale = true);

  /// Degraded-mode lookup: returns the cached result even when a traffic
  /// update has bumped the epoch since it was computed, flagging it stale
  /// instead of evicting it. A stale-but-plausible route beats no route
  /// when the storage layer is failing; callers must surface the flag.
  StaleLookupResult LookupAllowStale(const Key& key);

  /// Caches `result` computed while `observed_epoch` (from epoch()) was
  /// current. Dropped when an epoch bump happened since. `regions` is the
  /// sorted set of overlay cells the path touches (empty = not region
  /// tracked, so only epoch bumps invalidate it). When `observed_seq`
  /// (from invalidation_seq()) is supplied, the insert is also dropped if
  /// any region invalidation ran since — conservative, but a compute
  /// raced by an invalidation is rare and merely recomputes.
  void Insert(const Key& key, uint64_t observed_epoch,
              const PathResult& result,
              std::vector<int32_t> regions = {},
              std::optional<uint64_t> observed_seq = std::nullopt);

  Stats stats() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    Key key;
    uint64_t epoch = 0;
    PathResult result;
    std::vector<int32_t> regions;  ///< sorted overlay cells; may be empty
    bool stale = false;            ///< region-invalidated
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    Stats stats;  // guarded by mu
  };

  Shard& ShardFor(const Key& key);

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> invalidation_seq_{0};
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace atis::core
