// Estimator (heuristic) functions for best-first search (Section 5.3.2).
//
// An estimator f(u, d) approximates the cost of the cheapest path from u to
// the destination d from their coordinates. A* is optimal when the
// estimator never overestimates (Lemma 3). On unit-cost grid graphs the
// Manhattan distance is a *perfect* estimate; on real road maps with
// non-distance costs it can overestimate, trading optimality for speed —
// the paper's closing discussion.
#pragma once

#include <memory>
#include <string_view>

#include "graph/graph.h"

namespace atis::core {

enum class EstimatorKind {
  kZero,       ///< best-first without information: degenerates to Dijkstra
  kEuclidean,  ///< straight-line distance (admissible for distance costs)
  kManhattan,  ///< L1 distance (perfect on uniform grids; can overestimate)
  kLandmark,   ///< ALT triangle-inequality bounds (admissible on any costs)
};

std::string_view EstimatorKindName(EstimatorKind kind);

class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Estimated cheapest-path cost between two coordinates.
  virtual double Estimate(const graph::Point& from,
                          const graph::Point& to) const = 0;

  /// Node-aware variant used by the search engines: estimates the cost of
  /// the cheapest path `from` -> `to` given both the node ids and their
  /// coordinates. Geometric estimators ignore the ids; estimators backed by
  /// precomputed per-node data (the landmark estimator) ignore the
  /// coordinates instead.
  virtual double EstimateNodes(graph::NodeId from,
                               const graph::Point& from_pt, graph::NodeId to,
                               const graph::Point& to_pt) const {
    (void)from;
    (void)to;
    return Estimate(from_pt, to_pt);
  }

  virtual EstimatorKind kind() const = 0;
  std::string_view name() const { return EstimatorKindName(kind()); }
};

/// Creates a geometric estimator. `cost_per_unit_distance` rescales
/// geometric distance into edge-cost units (e.g. travel-time costs with a
/// known maximum speed); use a value that *under*-states cost to keep the
/// estimator admissible. Returns null for kLandmark — that kind needs
/// precomputed distances; see MakeLandmarkEstimator in core/landmarks.h.
std::unique_ptr<Estimator> MakeEstimator(EstimatorKind kind,
                                         double cost_per_unit_distance = 1.0);

/// True if `estimator` never overestimates the true shortest-path cost
/// between any node pair of `g`. Exact (runs one Dijkstra per node), so
/// intended for tests and offline analysis, not hot paths.
bool EstimatorIsAdmissibleOn(const Estimator& estimator,
                             const graph::Graph& g);

}  // namespace atis::core
