#include "core/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra over an arbitrary local adjacency map keyed by global node
/// ids. Returns dist/pred maps.
struct LocalSearch {
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> pred;
};

LocalSearch LocalDijkstra(
    const std::unordered_map<NodeId, std::vector<graph::Edge>>& adj,
    NodeId from) {
  LocalSearch out;
  out.dist[from] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    const auto it = out.dist.find(u);
    if (it == out.dist.end() || du > it->second) continue;
    const auto au = adj.find(u);
    if (au == adj.end()) continue;
    for (const graph::Edge& e : au->second) {
      const double nd = du + e.cost;
      const auto dv = out.dist.find(e.to);
      if (dv == out.dist.end() || nd < dv->second) {
        out.dist[e.to] = nd;
        out.pred[e.to] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  return out;
}

std::vector<NodeId> LocalPath(const LocalSearch& search, NodeId from,
                              NodeId to) {
  std::vector<NodeId> path;
  NodeId at = to;
  while (true) {
    path.push_back(at);
    if (at == from) break;
    const auto it = search.pred.find(at);
    if (it == search.pred.end()) return {};
    at = it->second;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Result<HierarchicalRouter> HierarchicalRouter::Build(
    const Graph* g, const HierarchyOptions& options) {
  if (g == nullptr || g->num_nodes() == 0) {
    return Status::InvalidArgument("hierarchy needs a non-empty graph");
  }
  if (options.cell_size <= 0.0) {
    return Status::InvalidArgument("cell size must be positive");
  }

  HierarchicalRouter router;
  router.g_ = g;
  const size_t n = g->num_nodes();

  // 1. Assign nodes to rectangular cells over the bounding box.
  double min_x = g->point(0).x;
  double min_y = g->point(0).y;
  double max_x = min_x;
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    min_x = std::min(min_x, g->point(u).x);
    min_y = std::min(min_y, g->point(u).y);
    max_x = std::max(max_x, g->point(u).x);
  }
  const int cols = std::max(
      1, static_cast<int>(std::floor((max_x - min_x) / options.cell_size)) +
             1);
  std::map<std::pair<int, int>, int> cell_ids;  // (row, col) -> dense id
  router.cell_of_.resize(n, -1);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    const int col = static_cast<int>(
        std::floor((g->point(u).x - min_x) / options.cell_size));
    const int row = static_cast<int>(
        std::floor((g->point(u).y - min_y) / options.cell_size));
    auto [it, inserted] =
        cell_ids.emplace(std::make_pair(row, col),
                         static_cast<int>(router.cells_.size()));
    if (inserted) router.cells_.emplace_back();
    router.cell_of_[static_cast<size_t>(u)] = it->second;
    router.cells_[static_cast<size_t>(it->second)].members.push_back(u);
  }
  (void)cols;

  // 2. Boundary nodes: endpoints of cell-crossing edges.
  router.is_boundary_.assign(n, 0);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    for (const graph::Edge& e : g->Neighbors(u)) {
      if (router.cell_of_[static_cast<size_t>(u)] !=
          router.cell_of_[static_cast<size_t>(e.to)]) {
        router.is_boundary_[static_cast<size_t>(u)] = 1;
        router.is_boundary_[static_cast<size_t>(e.to)] = 1;
      }
    }
  }
  for (Cell& cell : router.cells_) {
    for (const NodeId u : cell.members) {
      if (router.is_boundary_[static_cast<size_t>(u)]) {
        cell.boundary.push_back(u);
      }
    }
    router.num_boundary_ += cell.boundary.size();
  }

  // 3. Per-cell boundary-to-boundary shortcut tables.
  for (size_t c = 0; c < router.cells_.size(); ++c) {
    Cell& cell = router.cells_[c];
    for (const NodeId b : cell.boundary) {
      std::vector<Shortcut> shortcuts = router.IntraCellPaths(
          static_cast<int>(c), b, cell.boundary);
      router.num_shortcuts_ += shortcuts.size();
      cell.shortcuts.emplace(b, std::move(shortcuts));
    }
  }
  return router;
}

std::vector<HierarchicalRouter::Shortcut>
HierarchicalRouter::IntraCellPaths(
    int cell, NodeId from, const std::vector<NodeId>& targets) const {
  // Local adjacency restricted to intra-cell edges.
  std::unordered_map<NodeId, std::vector<graph::Edge>> adj;
  for (const NodeId u : cells_[static_cast<size_t>(cell)].members) {
    for (const graph::Edge& e : g_->Neighbors(u)) {
      if (cell_of_[static_cast<size_t>(e.to)] == cell) {
        adj[u].push_back(e);
      }
    }
  }
  const LocalSearch search = LocalDijkstra(adj, from);
  std::vector<Shortcut> out;
  for (const NodeId t : targets) {
    if (t == from) continue;
    const auto it = search.dist.find(t);
    if (it == search.dist.end()) continue;
    Shortcut sc;
    sc.to = t;
    sc.cost = it->second;
    sc.path = LocalPath(search, from, t);
    out.push_back(std::move(sc));
  }
  return out;
}

PathResult HierarchicalRouter::Route(NodeId source,
                                     NodeId destination) const {
  PathResult result;
  if (!g_->HasNode(source) || !g_->HasNode(destination)) return result;
  if (source == destination) {
    result.found = true;
    result.path = {source};
    return result;
  }

  // Overlay adjacency: every edge carries the expanded node sequence.
  struct OverlayEdge {
    NodeId to;
    double cost;
    std::vector<NodeId> path;  // from..to inclusive
  };
  std::unordered_map<NodeId, std::vector<OverlayEdge>> overlay;

  // (a) Precomputed intra-cell boundary shortcuts.
  for (const Cell& cell : cells_) {
    for (const auto& [b, shortcuts] : cell.shortcuts) {
      for (const Shortcut& sc : shortcuts) {
        overlay[b].push_back({sc.to, sc.cost, sc.path});
      }
    }
  }
  // (b) Original cross-cell edges (both endpoints are boundary nodes).
  for (NodeId u = 0; u < static_cast<NodeId>(g_->num_nodes()); ++u) {
    for (const graph::Edge& e : g_->Neighbors(u)) {
      if (cell_of_[static_cast<size_t>(u)] !=
          cell_of_[static_cast<size_t>(e.to)]) {
        overlay[u].push_back({e.to, e.cost, {u, e.to}});
      }
    }
  }
  // (c) Source-cell interior: source to its cell's boundary nodes (and
  //     directly to the destination when they share a cell).
  const int s_cell = cell_of_[static_cast<size_t>(source)];
  const int d_cell = cell_of_[static_cast<size_t>(destination)];
  {
    std::vector<NodeId> targets =
        cells_[static_cast<size_t>(s_cell)].boundary;
    if (d_cell == s_cell) targets.push_back(destination);
    for (Shortcut& sc : [&] {
           auto v = IntraCellPaths(s_cell, source, targets);
           return v;
         }()) {
      overlay[source].push_back(
          {sc.to, sc.cost, std::move(sc.path)});
    }
  }
  // (d) Destination-cell interior: boundary nodes to the destination,
  //     via a reversed intra-cell search from the destination.
  {
    std::unordered_map<NodeId, std::vector<graph::Edge>> radj;
    for (const NodeId u : cells_[static_cast<size_t>(d_cell)].members) {
      for (const graph::Edge& e : g_->Neighbors(u)) {
        if (cell_of_[static_cast<size_t>(e.to)] == d_cell) {
          radj[e.to].push_back({u, e.cost});
        }
      }
    }
    const LocalSearch back = LocalDijkstra(radj, destination);
    for (const NodeId b : cells_[static_cast<size_t>(d_cell)].boundary) {
      if (b == destination) continue;
      const auto it = back.dist.find(b);
      if (it == back.dist.end()) continue;
      // Reversed-tree chain b -> ... -> destination.
      std::vector<NodeId> path;
      NodeId at = b;
      while (true) {
        path.push_back(at);
        if (at == destination) break;
        at = back.pred.at(at);
      }
      overlay[b].push_back({destination, it->second, std::move(path)});
    }
  }

  // Overlay Dijkstra with stale-skip; record the incoming overlay edge
  // for expansion.
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, std::pair<NodeId, const std::vector<NodeId>*>>
      via;  // node -> (pred overlay node, expanded segment)
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (du > dist[u]) continue;
    if (u == destination) break;
    ++result.stats.iterations;
    ++result.stats.nodes_expanded;
    const auto au = overlay.find(u);
    if (au == overlay.end()) continue;
    for (const OverlayEdge& e : au->second) {
      ++result.stats.nodes_generated;
      const double nd = du + e.cost;
      const auto dv = dist.find(e.to);
      if (dv == dist.end() || nd < dv->second) {
        ++result.stats.nodes_improved;
        dist[e.to] = nd;
        via[e.to] = {u, &e.path};
        pq.emplace(nd, e.to);
      }
    }
  }

  const auto dd = dist.find(destination);
  if (dd == dist.end()) return result;
  result.found = true;
  result.cost = dd->second;

  // Expand: walk overlay predecessors, splicing each segment.
  std::vector<const std::vector<NodeId>*> segments;
  NodeId at = destination;
  while (at != source) {
    const auto& [prev, seg] = via.at(at);
    segments.push_back(seg);
    at = prev;
  }
  std::reverse(segments.begin(), segments.end());
  result.path.push_back(source);
  for (const auto* seg : segments) {
    result.path.insert(result.path.end(), seg->begin() + 1, seg->end());
  }
  return result;
}

}  // namespace atis::core
