// Hierarchical path view: precomputed two-level routing.
//
// The paper closes by noting single-pair computation must avoid examining
// whole maps; the authors' follow-up research line (hierarchical
// encoded path views) pushes that further by *precomputing* structure.
// This module implements the flat two-level scheme:
//
//   1. Partition the embedded graph into rectangular cells (fragments).
//   2. A node is a *boundary* node if one of its edges crosses cells.
//   3. Per cell, precompute exact shortest paths between its boundary
//      nodes using only intra-cell edges.
//   4. A query (s, d) searches a small overlay graph: s's cell interior,
//      d's cell interior, the precomputed boundary-to-boundary shortcuts,
//      and the original cross-cell edges.
//
// Exactness: any path decomposes at its cell-boundary crossings; every
// crossing node is in the overlay, intra-cell segments are represented by
// the precomputed (exact) shortcuts, and inter-cell segments by the
// original edges — so the overlay search returns true shortest costs.
// Expanded paths are reconstructed by splicing the stored shortcut paths.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/search_types.h"
#include "graph/graph.h"
#include "util/status.h"

namespace atis::core {

struct HierarchyOptions {
  /// Cell side length in coordinate units. Smaller cells mean more
  /// boundary nodes but smaller per-cell tables.
  double cell_size = 8.0;
};

class HierarchicalRouter {
 public:
  /// Builds the partition and all per-cell boundary tables. The base
  /// graph must outlive the router. InvalidArgument on an empty graph or
  /// non-positive cell size.
  static Result<HierarchicalRouter> Build(const graph::Graph* g,
                                          const HierarchyOptions& options);

  /// Exact single-pair query via the overlay graph. stats.iterations
  /// counts overlay node expansions (compare against flat Dijkstra's
  /// expansions to see the speedup).
  PathResult Route(graph::NodeId source, graph::NodeId destination) const;

  // -- Introspection (benchmarks / tests) -----------------------------------
  size_t num_cells() const { return cells_.size(); }
  size_t num_boundary_nodes() const { return num_boundary_; }
  /// Total precomputed shortcut entries across all cells.
  size_t num_shortcuts() const { return num_shortcuts_; }
  int CellOf(graph::NodeId u) const {
    return cell_of_[static_cast<size_t>(u)];
  }
  bool IsBoundary(graph::NodeId u) const {
    return is_boundary_[static_cast<size_t>(u)] != 0;
  }

 private:
  HierarchicalRouter() = default;

  struct Shortcut {
    graph::NodeId to = graph::kInvalidNode;
    double cost = 0.0;
    /// Full intra-cell node sequence from..to (inclusive).
    std::vector<graph::NodeId> path;
  };

  struct Cell {
    std::vector<graph::NodeId> members;
    std::vector<graph::NodeId> boundary;
    /// Shortcuts from each boundary node of this cell.
    std::map<graph::NodeId, std::vector<Shortcut>> shortcuts;
  };

  /// Dijkstra restricted to one cell's members, from `from` to all its
  /// boundary nodes (also used at query time for s/d cell interiors).
  std::vector<Shortcut> IntraCellPaths(
      int cell, graph::NodeId from,
      const std::vector<graph::NodeId>& targets) const;

  const graph::Graph* g_ = nullptr;
  std::vector<int> cell_of_;
  std::vector<uint8_t> is_boundary_;
  std::vector<Cell> cells_;
  size_t num_boundary_ = 0;
  size_t num_shortcuts_ = 0;
};

}  // namespace atis::core
