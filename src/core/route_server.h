// Concurrent route-query serving: a fixed worker pool over the
// database-resident engine.
//
// The paper frames ATIS as a shared service answering route-computation
// queries for many travellers against one database-resident map
// (Section 1). This module is that service's executor: N worker threads
// share one metered DiskManager and one sharded BufferPool, and each
// worker owns a private RelationalGraphStore replica (the search
// algorithms write working state — status/pred/path_cost — into R, so the
// node relation cannot be shared between in-flight queries; the map data
// itself is identical across replicas). Queries are dispatched to whichever
// worker is free; per-query block I/O is accounted exactly via
// IoMeter::ScopedThreadCounters even though the disk is shared.
//
// Workers run with statement_at_a_time off: the paper's between-statement
// pool eviction is a single-user execution model and is meaningless (and
// unsafe) with concurrent pinners. Paper-mode experiments keep using a
// single-threaded DbSearchEngine and are bit-identical to before.
//
// Resilience: each query carries a deadline (cooperatively checked by the
// engine per expansion), miss fills retry transient disk faults with
// bounded backoff, each replica sits behind a circuit breaker that
// quarantines it after consecutive storage faults, and when the primary
// path still fails the server degrades gracefully — a stale cached route
// (flagged) first, then an in-memory search over the last-good graph
// snapshot — instead of returning an error. Oversized batches are shed by
// admission control with kResourceExhausted.
//
// Batched execution (Options::max_batch > 1): admitted queries wait in
// one shared queue; a free worker claims a FIFO seed plus up to
// max_batch - 1 queued queries whose sources share a coarse Hilbert
// region, and runs them back-to-back through a shared BatchContext
// (core/batch_engine.h) — one metered adjacency fetch per expanded node
// feeds every member, prefetch hints dedupe batch-wide, and identical
// (source, destination, algorithm, version) members coalesce into a
// single computation. Answers are bit-identical to serial execution; only
// the block I/O per query shrinks.
//
// Traffic ingestion (ApplyUpdates / UpdateEdgeCost): the write path is
// MVCC-lite. Every metric the server has ever served is an immutable
// MetricState — version number, float-rounded graph snapshot, overlay
// index, landmark estimator — and updates never quiesce the worker pool.
// A writer builds version N+1 off to the side (WAL append + fsync first
// when Options::wal.dir is set, then updater-replica apply, incremental
// overlay re-customization deduplicated across the batch, and landmark
// re-validation when any cost decreased), then publishes it by swapping
// one shared_ptr under the queue mutex. Workers pin the head state when
// they claim a batch and lazily catch their private store replica up to
// it (applying only the per-edge dirty set they are behind on); every
// query in the batch then runs against exactly one metric version, which
// it reports in RouteResponse::metric_version. Cache inserts are dropped
// when a newer version published mid-query, so a stale route can never be
// cached past its invalidation. With a WAL directory configured the
// server replays committed batches (and the newest checkpoint) at
// construction, restoring the exact pre-crash metric.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch_engine.h"
#include "core/circuit_breaker.h"
#include "core/db_search.h"
#include "core/landmarks.h"
#include "core/overlay.h"
#include "core/route_cache.h"
#include "core/update_log.h"
#include "graph/graph.h"
#include "graph/relational_graph.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/deadline.h"

namespace atis::obs {
class Counter;
class SloWindows;
class SlowQueryLog;
class TraceRing;
class TraceSampler;
}  // namespace atis::obs

namespace atis::core {

/// One route-computation request.
struct RouteQuery {
  graph::NodeId source = 0;
  graph::NodeId destination = 0;
  Algorithm algorithm = Algorithm::kAStar;
  /// Only read when algorithm == kAStar.
  AStarVersion version = AStarVersion::kV3;
  /// Per-query deadline; 0 = use the server's default_deadline_ms.
  uint64_t deadline_ms = 0;
};

/// How a response was produced.
enum class ServedVia {
  kEngine,      ///< database-resident search on a healthy replica
  kCache,       ///< fresh route-cache hit
  kStaleCache,  ///< degraded: cached route from before an epoch bump
  kSnapshot,    ///< degraded: in-memory search on the last-good graph
  kCoalesced,   ///< copied from an identical query in the same batch
  kNone,        ///< failed (or shed) with no answer
};
const char* ServedViaName(ServedVia via);

/// Outcome of one query: the path result plus serving-side accounting.
struct RouteResponse {
  size_t query_index = 0;     ///< position in the submitted batch
  Status status;              ///< non-OK when no answer could be produced
  PathResult result;          ///< valid iff status.ok()
  storage::IoCounters io;     ///< exact block I/O of this query
  double latency_seconds = 0.0;
  int worker_id = -1;
  bool cache_hit = false;     ///< answered from the route cache (io is 0)
  /// True when the answer came from a degraded fallback (stale cache or
  /// in-memory snapshot) after the primary path failed. status is OK —
  /// the route is usable — but it may not reflect current traffic.
  bool degraded = false;
  ServedVia served_via = ServedVia::kEngine;
  /// The primary-path error a degraded answer papered over (OK otherwise).
  Status degraded_cause;
  /// Id of the batch this query executed in (0 when batching is off).
  uint64_t batch_id = 0;
  /// True when this answer was coalesced from an identical query in the
  /// same batch (singleflight): io is zero, the computation ran once.
  bool coalesced = false;
  /// The metric version this answer was computed against (the version the
  /// worker pinned at batch claim). Subtracting it from the currently
  /// published version bounds the answer's staleness in update batches.
  uint64_t metric_version = 0;
};

class RouteServer {
 public:
  struct Options {
    /// Worker threads (and store replicas). Clamped to >= 1.
    size_t num_workers = 4;
    /// Total frames of the shared buffer pool; 0 = 128 per worker.
    size_t pool_frames = 0;
    /// Pool shards; 0 = max(4, 2 * num_workers).
    size_t pool_shards = 0;
    /// Simulated device latency for the shared disk (off by default).
    storage::DiskLatencyModel disk_latency;
    /// Engine options for every worker. statement_at_a_time is forced off
    /// (see file comment); the other knobs are honoured.
    DbSearchOptions search;
    /// Physical layout every store replica loads with. kHilbert packs
    /// spatially-near tuples into shared blocks (fewer distinct block
    /// reads per query); kRowOrder is the paper's layout.
    graph::StoreLayout layout = graph::StoreLayout::kRowOrder;
    /// Frontier prefetch depth for every engine (top-k frontier nodes
    /// whose adjacency pages are hinted each iteration; 0 = off). When
    /// > 0 the shared pool runs background prefetch workers.
    size_t prefetch_depth = 0;
    /// Background prefetch fill threads; 0 = 2. Read only when
    /// prefetch_depth > 0.
    size_t prefetch_workers = 0;
    /// Landmarks for A* Version 4. 0 disables; > 0 selects this many
    /// landmarks on the float-rounded map, persists the table through the
    /// storage layer once, and enables kV4 queries on every worker.
    size_t num_landmarks = 0;
    /// Partition-boundary overlay for A* Version 5 (core/overlay.h).
    /// 0 disables; > 0 builds the 2^order x 2^order Hilbert partition,
    /// persists its topology through replica 0's storage path, customizes
    /// the distance tables in parallel across the store replicas, and
    /// enables kV5 queries on every worker. UpdateEdgeCost then
    /// re-customizes incrementally (only the touched cell) instead of
    /// leaving the overlay stale.
    uint32_t overlay_cell_order = 0;
    /// Memoise full route results in a sharded LRU invalidated by traffic
    /// epochs (see core/route_cache.h).
    bool enable_cache = false;
    /// Only read when enable_cache is true.
    RouteCache::Options cache;
    /// Deadline applied to queries that don't carry their own; 0 = none.
    uint64_t default_deadline_ms = 0;
    /// Admission control: when > 0, ServeBatch admits at most
    /// num_workers + max_queue_depth queries per call and sheds the rest
    /// with kResourceExhausted (they never reach a worker). 0 = unbounded.
    size_t max_queue_depth = 0;
    /// Serve degraded answers (stale cache, then in-memory search on the
    /// last-good graph snapshot) when the primary path fails.
    bool enable_degraded = false;
    /// Seeded probabilistic fault injection on the shared disk, installed
    /// after the replicas load (so construction itself never faults).
    storage::FaultProfile fault_profile;
    /// Bounded retry for buffer-pool miss fills hitting transient faults.
    storage::RetryPolicy retry;
    /// Per-replica circuit breaker configuration.
    CircuitBreaker::Options breaker;

    /// Batched execution: a worker claims up to this many queued queries
    /// sharing a region (see batch_region_order) and runs them as one
    /// batch through a shared BatchContext — one metered adjacency fetch
    /// per expanded node feeds every member, prefetch hints dedupe
    /// batch-wide, and identical queries coalesce into one computation.
    /// Results stay bit-identical to serial execution; only per-query I/O
    /// shrinks. 1 (default) = unbatched, the pre-batching serving path.
    size_t max_batch = 1;
    /// How long a worker holds an underfull batch open waiting for more
    /// same-region arrivals, measured from the seed query's enqueue time.
    /// 0 (default) = never wait: queries already queued still batch
    /// together, but nothing is delayed for future arrivals.
    uint64_t batch_window_us = 0;
    /// Region-affinity granularity: queries are grouped by the Hilbert
    /// cell of their source on a 2^order x 2^order grid over the map's
    /// bounding box. Read only when max_batch > 1.
    uint32_t batch_region_order = 3;

    /// Durable traffic ingestion. All off by default (in-memory updates
    /// only, exactly the pre-WAL behaviour).
    struct WalOptions {
      /// Directory for the write-ahead log (`wal.atisw`) and epoch
      /// checkpoints (`checkpoint-<seq>.atisg`). Empty = durability off.
      /// When set, construction replays the newest checkpoint plus every
      /// committed WAL frame past it before loading the replicas, so the
      /// served metric is exactly the last acknowledged state.
      std::string dir;
      /// fsync every committed batch (the durability guarantee). Off only
      /// for throughput experiments that isolate fsync cost.
      bool sync_on_commit = true;
      /// Write a checkpoint (and reset the WAL) every N applied batches;
      /// 0 = never checkpoint, the WAL grows until restart.
      uint64_t checkpoint_every = 0;
    };
    WalOptions wal;

    /// Serving-path observability (tracing, slow-query log, SLO windows).
    /// All off by default; each knob is independent.
    struct ObsOptions {
      /// Head-sample 1 query in N for trace persistence (0 = tracing off).
      /// When on, every query runs under a per-thread Tracer — cheap next
      /// to the metered block reads — but only head-sampled, slow,
      /// degraded, or errored span trees are written to the ring.
      uint64_t sample_every = 0;
      /// Directory for the bounded on-disk trace ring. Required when
      /// sample_every > 0.
      std::string trace_dir;
      size_t trace_ring_capacity = 32;
      /// Queries at or above this latency go to the slow-query log and
      /// force-persist their trace. 0 disables the slow-query log.
      double slow_query_ms = 0.0;
      /// JSONL slow-query log path. Required when slow_query_ms > 0.
      std::string slow_query_log_path;
      size_t slow_query_log_max_bytes = 1 << 20;
      /// Keep rolling 10s/1m/5m SLO windows (QPS, percentiles,
      /// availability, burn rate) and publish them as gauges.
      bool enable_slo = false;
      /// Availability objective for the burn-rate gauges.
      double availability_target = 0.999;
    };
    ObsOptions obs;
  };

  /// Loads `options.num_workers` store replicas of `g` and starts the
  /// workers. Check init_status() before serving.
  RouteServer(const graph::Graph& g, Options options);
  /// Same with default Options. (A separate overload: a nested class's
  /// default member initializers cannot feed a default argument of the
  /// enclosing class.)
  explicit RouteServer(const graph::Graph& g);

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// Graceful shutdown: running queries finish, workers join.
  ~RouteServer();

  /// OK when every store replica loaded; the first load error otherwise.
  const Status& init_status() const { return init_status_; }

  /// Runs the batch across the worker pool and blocks until every query
  /// has an answer. Responses are positionally aligned with `queries`
  /// (response[i].query_index == i). A failed query yields a non-OK
  /// per-response status — the batch itself still succeeds. When
  /// Options::max_queue_depth bounds admission, queries beyond the
  /// admitted prefix are shed immediately with kResourceExhausted. Safe
  /// to call concurrently from multiple dispatcher threads (their queries
  /// interleave in one shared pending queue — with batching on they may
  /// even share a batch); fails if init_status() is non-OK.
  Result<std::vector<RouteResponse>> ServeBatch(
      const std::vector<RouteQuery>& queries);

  /// Applies one batch of traffic updates as a single committed metric
  /// version. Safe to call concurrently with ServeBatch — readers are
  /// never blocked: the batch is WAL-committed first (when durability is
  /// on; a failed commit applies nothing), built into an immutable
  /// version-N+1 MetricState off to the side (updater-replica apply,
  /// overlay re-customization deduplicated across the batch's cells,
  /// landmark re-validation when any cost decreased — Version 4 stays
  /// exact under live traffic), and published by one pointer swap.
  /// In-flight queries keep serving their pinned version; workers catch
  /// up at their next batch claim. Cache invalidation is scoped: a batch
  /// of pure cost *increases* with the overlay on invalidates only the
  /// cached routes whose paths touch the updated edges' cells
  /// (RouteCache::InvalidateRegions); any decrease — which can improve
  /// routes anywhere — bumps the global epoch. Concurrent writers
  /// serialize among themselves. InvalidArgument (nothing applied, nothing
  /// logged) if any edge is unknown or any cost negative.
  ///
  /// Failure atomicity: any failure BEFORE the commit point (validation,
  /// WAL append/fsync) applies nothing and may be retried. A failure
  /// AFTER the commit point — while building version N+1 (updater-replica
  /// apply, overlay re-customization, landmark revalidation) — leaves
  /// writer-side state half-mutated, so the write path poisons itself:
  /// nothing is published, readers keep serving the last fully-published
  /// version, and every later ApplyUpdates is refused with the poison
  /// status (see write_path_status()). A restart recovers by replaying
  /// the WAL into a consistent metric.
  Status ApplyUpdates(std::span<const EdgeCostUpdate> updates);

  /// OK normally; the permanent refusal reason after a post-commit build
  /// failure poisoned the write path (readers are unaffected).
  Status write_path_status();

  /// Single-edge convenience wrapper over ApplyUpdates.
  Status UpdateEdgeCost(graph::NodeId u, graph::NodeId v, double cost);

  size_t num_workers() const { return engines_.size(); }
  storage::DiskManager& disk() { return disk_; }
  storage::BufferPool& pool() { return *pool_; }
  bool landmarks_enabled() const {
    return !engines_.empty() && engines_.front()->landmarks_enabled();
  }
  bool overlay_enabled() const {
    return options_.overlay_cell_order > 0 && init_status_.ok();
  }
  /// Snapshot of the currently served overlay index (null when disabled).
  /// Consistent: the topology/customization pair is swapped as one unit.
  std::shared_ptr<const OverlayIndex> overlay_index();
  /// Metric version of the served customization (0 when disabled).
  uint64_t overlay_metric_version();
  /// Null when Options::enable_cache was false.
  RouteCache* cache() { return cache_.get(); }
  /// The circuit breaker guarding worker `w`'s replica.
  const CircuitBreaker& breaker(size_t w) const { return *breakers_[w]; }
  /// The currently published metric snapshot: the in-memory graph under
  /// the store's float-rounded metric that degraded answers are computed
  /// on. Immutable — updates publish a fresh one rather than mutating it.
  std::shared_ptr<const graph::Graph> snapshot();
  /// The currently published metric version (1 at construction; +1 per
  /// applied update batch). Lock-free.
  uint64_t published_version() const {
    return published_version_.load(std::memory_order_acquire);
  }
  /// WAL / recovery accounting (all zero when Options::wal.dir is empty).
  struct IngestStats {
    bool wal_enabled = false;
    uint64_t last_seq = 0;            ///< newest committed batch sequence
    uint64_t appended_batches = 0;    ///< WAL frames committed this run
    uint64_t appended_records = 0;
    uint64_t bytes_appended = 0;
    uint64_t append_failures = 0;     ///< commits refused by the WAL
    uint64_t checkpoints = 0;         ///< checkpoints written this run
    uint64_t recovered_batches = 0;   ///< frames replayed at construction
    uint64_t recovered_records = 0;
    bool recovery_torn_tail = false;  ///< a torn tail was truncated
    double recovery_seconds = 0.0;    ///< checkpoint load + WAL replay
    uint64_t updates_applied = 0;     ///< edge updates applied this run
    uint64_t update_batches = 0;      ///< ApplyUpdates calls that published
    uint64_t worker_catchups = 0;     ///< replica catch-ups at batch claim
    uint64_t landmark_revalidations = 0;
  };
  IngestStats ingest_stats();

  /// Null unless the corresponding Options::obs knob enabled them.
  obs::SloWindows* slo() { return slo_.get(); }
  obs::TraceRing* trace_ring() { return trace_ring_.get(); }
  obs::SlowQueryLog* slow_query_log() { return slow_log_.get(); }

  /// Batching totals for this server since construction (all 0 when
  /// max_batch == 1 — the unbatched path never touches them). The same
  /// numbers appear in /statusz under "batching" and, process-wide, as
  /// the atis_batch_* counters.
  uint64_t batches_executed() const {
    return batches_executed_.load(std::memory_order_relaxed);
  }
  uint64_t batch_members_executed() const {
    return batch_members_executed_.load(std::memory_order_relaxed);
  }
  uint64_t batch_adjacency_fetches() const {
    return batch_fetches_.load(std::memory_order_relaxed);
  }
  uint64_t batch_shared_hits() const {
    return batch_shared_.load(std::memory_order_relaxed);
  }
  uint64_t batch_coalesced_served() const {
    return batch_coalesced_served_.load(std::memory_order_relaxed);
  }

  /// Pushes pull-style gauges (SLO windows, uptime) into the default
  /// registry. Hook this into HttpExporter::Options::refresh, or call it
  /// before a one-shot metrics dump. Safe from any thread.
  void RefreshObsGauges();

  /// Per-worker serving state as a JSON object: breaker state and
  /// transition counts, queue depth, cache hit/stale rates, degraded
  /// serving counters, buffer-pool and prefetch stats, SLO windows,
  /// uptime, and build/layout info. This is the /statusz body.
  std::string StatuszJson();

 private:
  /// One ServeBatch invocation's completion state (stack-allocated by the
  /// dispatcher; outlives its queries because ServeBatch blocks on it).
  struct ServeCall {
    size_t remaining = 0;  // guarded by mu_
  };
  /// One admitted query waiting in (or claimed from) the shared queue.
  struct WorkItem {
    const RouteQuery* query = nullptr;
    std::vector<RouteResponse>* out = nullptr;
    size_t index = 0;      ///< position within the dispatcher's call
    uint64_t region = 0;   ///< batch-formation affinity key
    std::chrono::steady_clock::time_point enqueued;
    ServeCall* call = nullptr;
  };

  /// One immutable published metric: everything a query needs to serve a
  /// consistent answer at one version. Swapped whole under mu_; readers
  /// pin the shared_ptr and outlive any number of later publications.
  struct MetricState {
    uint64_t version = 1;
    /// The served map under the store's float-rounded metric (degraded
    /// answers, region index lookups).
    std::shared_ptr<const graph::Graph> snapshot;
    std::shared_ptr<const OverlayIndex> overlay;      // null = V5 off
    std::shared_ptr<const Estimator> estimator;       // null = V4 off
  };
  /// Latest raw cost of an edge some replica has not yet applied, keyed
  /// (u << 32 | v). Applying only the newest cost per edge is idempotent,
  /// so the map is bounded by the edge count no matter how far a replica
  /// falls behind. Guarded by mu_.
  struct DirtyEdge {
    double cost = 0.0;
    uint64_t version = 0;  ///< the publication that wrote this cost
  };

  void WorkerLoop(size_t worker_id);
  /// Claims a batch from the queue: a FIFO seed plus up to max_batch - 1
  /// pending queries sharing its region, optionally holding the batch
  /// open batch_window_us for late same-region arrivals. Returns false on
  /// shutdown. `lock` must hold mu_.
  bool ClaimBatch(std::unique_lock<std::mutex>& lock,
                  std::vector<WorkItem>* claimed, uint64_t* batch_id);
  RouteResponse RunOne(size_t worker_id, size_t query_index,
                       const RouteQuery& q, BatchContext* batch,
                       uint64_t batch_id, const MetricState& pinned,
                       const Status& replica_health);
  /// A singleflight follower's response: the leader's answer with the
  /// member's own accounting (zero I/O, ServedVia::kCoalesced).
  RouteResponse RunCoalesced(size_t worker_id, size_t query_index,
                             const RouteQuery& q,
                             const RouteResponse& leader,
                             uint64_t batch_id);
  /// Fills `resp` from a degraded source after primary failure `cause`.
  /// Returns false when no fallback produced an answer.
  bool ServeDegraded(const RouteQuery& q, const RouteCache::Key& key,
                     Status cause, const MetricState& pinned,
                     RouteResponse* resp);
  /// The sorted set of overlay cells `result`'s path touches (empty when
  /// `overlay` is null) — the cache entry's region tag.
  static std::vector<int32_t> PathRegions(const PathResult& result,
                                          const OverlayIndex* overlay);
  /// Brings worker `worker_id`'s replica (store costs, overlay pointer,
  /// estimator pointer) up to `pinned`, applying `todo`. Returns the
  /// first failure; on failure the replica stays marked behind and the
  /// batch serves degraded from the pinned snapshot.
  Status CatchUpReplica(size_t worker_id, const MetricState& pinned,
                        std::span<const EdgeCostUpdate> todo);
  /// Durable-recovery half of construction: loads the newest checkpoint,
  /// replays committed WAL frames past it into `base`, and opens the log
  /// for appending. Fills wal_ and recovery stats.
  Status RecoverFromWal(graph::Graph* base);
  /// Writes `checkpoint-<seq>.atisg` atomically, resets the WAL, and
  /// removes superseded checkpoints. Caller holds update_mu_.
  Status WriteCheckpoint(uint64_t seq);
  /// The post-commit half of ApplyUpdates: mutates the updater replica
  /// and write_graph_, builds the version-N+1 MetricState (overlay
  /// re-customization, landmark revalidation), publishes it, and runs
  /// scoped cache invalidation. Caller holds update_mu_ and must poison
  /// the write path on failure (writer state may be half-mutated).
  Status PublishBatchLocked(std::span<const EdgeCostUpdate> updates,
                            bool any_decrease);

  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::vector<std::unique_ptr<graph::RelationalGraphStore>> stores_;
  std::vector<std::unique_ptr<DbSearchEngine>> engines_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::unique_ptr<RouteCache> cache_;
  /// The published metric head. Guarded by mu_ (pointer reads/writes
  /// only; the pointee is immutable). published_version_ mirrors
  /// head_->version for lock-free staleness checks.
  std::shared_ptr<const MetricState> head_;
  std::atomic<uint64_t> published_version_{1};
  Options options_;

  // ---- Write path (guarded by update_mu_; writers serialize among
  // themselves and never block readers) ----
  std::mutex update_mu_;
  /// The writer's working copy of the served metric (float-rounded).
  /// Each publication copies it into an immutable MetricState snapshot.
  graph::Graph write_graph_;
  /// Dedicated non-serving replica the writer keeps current so overlay
  /// re-customization reads post-update adjacency (null when V5 is off).
  std::unique_ptr<graph::RelationalGraphStore> updater_store_;
  /// The served landmark table (ids reused by re-validation; null = off).
  std::shared_ptr<const LandmarkSet> landmark_set_;
  std::unique_ptr<UpdateLog> wal_;  // null when Options::wal.dir empty
  /// Non-OK after a post-commit build failure: writer-side state is
  /// half-mutated, so further updates are refused (readers keep serving
  /// the last published, fully-consistent version).
  Status write_path_status_;
  uint64_t last_committed_seq_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  double recovery_seconds_ = 0.0;
  UpdateLog::ReplayStats recovery_;

  // Per-replica catch-up state. replica_version_ and dirty_edges_ are
  // guarded by mu_; worker_overlay_/worker_estimator_ slots are touched
  // only by their own worker thread after construction.
  std::vector<uint64_t> replica_version_;
  std::unordered_map<uint64_t, DirtyEdge> dirty_edges_;
  std::vector<std::shared_ptr<const OverlayIndex>> worker_overlay_;
  std::vector<std::shared_ptr<const Estimator>> worker_estimator_;
  // Metric series, resolved once at startup (cache ones null w/o cache).
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_stale_ = nullptr;
  obs::Counter* cache_region_invalidated_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* degraded_stale_ = nullptr;
  obs::Counter* degraded_snapshot_ = nullptr;
  obs::Counter* breaker_opened_ = nullptr;
  obs::Counter* breaker_rejections_ = nullptr;
  obs::Counter* admission_shed_ = nullptr;
  obs::Counter* traces_sampled_ = nullptr;
  obs::Counter* slow_queries_ = nullptr;
  obs::Counter* batch_batches_ = nullptr;
  obs::Counter* batch_members_ = nullptr;
  obs::Counter* batch_adjacency_fetches_ = nullptr;
  obs::Counter* batch_shared_hits_ = nullptr;
  obs::Counter* batch_coalesced_ = nullptr;
  // Per-server batching totals for /statusz (the counters above are
  // process-global and may aggregate several servers).
  std::atomic<uint64_t> batches_executed_{0};
  std::atomic<uint64_t> batch_members_executed_{0};
  std::atomic<uint64_t> batch_fetches_{0};
  std::atomic<uint64_t> batch_shared_{0};
  std::atomic<uint64_t> batch_coalesced_served_{0};
  /// Region-affinity index over the served map (null when max_batch <= 1).
  std::unique_ptr<RegionIndex> regions_;
  // Observability state (null unless enabled by Options::obs).
  std::unique_ptr<obs::TraceSampler> sampler_;
  std::unique_ptr<obs::TraceRing> trace_ring_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::unique_ptr<obs::SloWindows> slo_;
  std::chrono::steady_clock::time_point started_{};
  Status init_status_;

  // Traffic-update accounting (relaxed; read by /statusz).
  std::atomic<uint64_t> traffic_updates_applied_{0};
  std::atomic<uint64_t> traffic_update_batches_{0};
  std::atomic<uint64_t> overlay_cells_recustomized_{0};
  std::atomic<uint64_t> wal_append_failures_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> worker_catchups_{0};
  std::atomic<uint64_t> landmark_revalidations_{0};
  // WAL / snapshot metric series, resolved once at startup.
  obs::Counter* wal_appends_metric_ = nullptr;
  obs::Counter* wal_records_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* wal_append_failures_metric_ = nullptr;
  obs::Counter* wal_checkpoints_metric_ = nullptr;
  obs::Counter* snapshot_published_metric_ = nullptr;
  obs::Counter* snapshot_catchups_metric_ = nullptr;
  obs::Counter* snapshot_revalidations_metric_ = nullptr;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for queries / stop
  std::condition_variable done_cv_;   // dispatchers wait for completion
  std::deque<WorkItem> pending_;      // guarded by mu_
  uint64_t next_batch_id_ = 0;        // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace atis::core
