#include "core/k_shortest.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>
#include <vector>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dijkstra with banned nodes and banned (u, v) node pairs. Returns the
/// path and its cost, or found=false.
struct ConstrainedResult {
  bool found = false;
  double cost = 0.0;
  std::vector<NodeId> path;
};

ConstrainedResult ConstrainedDijkstra(
    const Graph& g, NodeId source, NodeId destination,
    const std::set<std::pair<NodeId, NodeId>>& banned_edges,
    const std::vector<uint8_t>& banned_nodes) {
  ConstrainedResult out;
  const size_t n = g.num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> pred(n, graph::kInvalidNode);
  dist[static_cast<size_t>(source)] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (du > dist[static_cast<size_t>(u)]) continue;
    if (u == destination) break;
    for (const graph::Edge& e : g.Neighbors(u)) {
      if (banned_nodes[static_cast<size_t>(e.to)]) continue;
      if (banned_edges.count({u, e.to}) != 0) continue;
      const double nd = du + e.cost;
      if (nd < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = nd;
        pred[static_cast<size_t>(e.to)] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  if (dist[static_cast<size_t>(destination)] == kInf) return out;
  out.found = true;
  out.cost = dist[static_cast<size_t>(destination)];
  for (NodeId at = destination; at != graph::kInvalidNode;
       at = pred[static_cast<size_t>(at)]) {
    out.path.push_back(at);
    if (at == source) break;
  }
  std::reverse(out.path.begin(), out.path.end());
  return out;
}

/// Cheapest cost of any edge u -> v (+inf when absent).
double MinEdgeCost(const Graph& g, NodeId u, NodeId v) {
  double best = kInf;
  for (const graph::Edge& e : g.Neighbors(u)) {
    if (e.to == v) best = std::min(best, e.cost);
  }
  return best;
}

}  // namespace

Result<std::vector<RankedPath>> KShortestPaths(const Graph& g,
                                               NodeId source,
                                               NodeId destination,
                                               size_t k) {
  if (!g.HasNode(source) || !g.HasNode(destination)) {
    return Status::InvalidArgument("unknown endpoint");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }

  std::vector<RankedPath> accepted;
  std::vector<uint8_t> no_bans(g.num_nodes(), 0);
  {
    const ConstrainedResult first =
        ConstrainedDijkstra(g, source, destination, {}, no_bans);
    if (!first.found) return accepted;  // unreachable: empty result
    accepted.push_back({first.cost, first.path});
  }

  // Candidate pool, ordered by (cost, node sequence) for determinism.
  auto cmp = [](const RankedPath& a, const RankedPath& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.path < b.path;
  };
  std::set<RankedPath, decltype(cmp)> candidates(cmp);
  std::set<std::vector<NodeId>> seen;
  seen.insert(accepted.front().path);

  while (accepted.size() < k) {
    const std::vector<NodeId>& prev = accepted.back().path;
    // Branch at every node of the last accepted path except the
    // destination.
    for (size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const std::vector<NodeId> root(prev.begin(),
                                     prev.begin() + static_cast<long>(i) + 1);

      std::set<std::pair<NodeId, NodeId>> banned_edges;
      for (const RankedPath& p : accepted) {
        if (p.path.size() > i &&
            std::equal(root.begin(), root.end(), p.path.begin())) {
          banned_edges.insert({p.path[i], p.path[i + 1]});
        }
      }
      std::vector<uint8_t> banned_nodes(g.num_nodes(), 0);
      for (size_t j = 0; j < i; ++j) {
        banned_nodes[static_cast<size_t>(root[j])] = 1;  // loopless
      }

      const ConstrainedResult spur_path = ConstrainedDijkstra(
          g, spur, destination, banned_edges, banned_nodes);
      if (!spur_path.found) continue;

      RankedPath candidate;
      candidate.path = root;
      candidate.path.insert(candidate.path.end(),
                            spur_path.path.begin() + 1,
                            spur_path.path.end());
      double root_cost = 0.0;
      for (size_t j = 0; j + 1 < root.size(); ++j) {
        root_cost += MinEdgeCost(g, root[j], root[j + 1]);
      }
      candidate.cost = root_cost + spur_path.cost;
      if (seen.insert(candidate.path).second) {
        candidates.insert(std::move(candidate));
      }
    }
    if (candidates.empty()) break;  // no more loopless alternatives
    accepted.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return accepted;
}

}  // namespace atis::core
