#include "core/overlay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <queue>
#include <set>
#include <sstream>
#include <thread>

#include "graph/spatial_layout.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"

namespace atis::core {

using graph::Graph;
using graph::NodeId;
using graph::RelationalGraphStore;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kMaxCellOrder = 8;

/// Shortest-path tree over a member-index adjacency list (one cell's
/// intra-cell graph). parent[root] = -1; parent[m] = -1 with dist +inf
/// when unreachable.
struct MemberTree {
  std::vector<double> dist;
  std::vector<int32_t> parent;
};

MemberTree MemberDijkstra(
    const std::vector<std::vector<std::pair<int32_t, double>>>& adj,
    int32_t source) {
  MemberTree tree;
  tree.dist.assign(adj.size(), kInf);
  tree.parent.assign(adj.size(), -1);
  tree.dist[static_cast<size_t>(source)] = 0.0;
  using Item = std::pair<double, int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [du, u] = pq.top();
    pq.pop();
    if (du > tree.dist[static_cast<size_t>(u)]) continue;
    for (const auto& [v, c] : adj[static_cast<size_t>(u)]) {
      const double nd = du + c;
      if (nd < tree.dist[static_cast<size_t>(v)]) {
        tree.dist[static_cast<size_t>(v)] = nd;
        tree.parent[static_cast<size_t>(v)] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return tree;
}

/// One cell's freshly customized state: its tables plus the current cross
/// arcs of its members (non-empty only for boundary members).
struct CellCustomization {
  OverlayCustomization::CellTables tables;
  std::vector<std::pair<NodeId, std::vector<graph::Edge>>> cross;
};

/// Reads every member's adjacency through the metered store, splits it
/// into the intra-cell graph and cross arcs, and runs the restricted
/// Dijkstras: one forward tree per member (the in-cell all-pairs table,
/// whose boundary-rooted rows double as the forward boundary tables) and
/// one reverse tree per boundary node.
Result<CellCustomization> CustomizeCell(const OverlayTopology& topo,
                                        int32_t c,
                                        const RelationalGraphStore* store) {
  const OverlayTopology::Cell& cell = topo.cell(c);
  const size_t m = cell.members.size();
  const size_t b = cell.boundary.size();
  std::vector<std::vector<std::pair<int32_t, double>>> fwd_adj(m);
  std::vector<std::vector<std::pair<int32_t, double>>> rev_adj(m);
  CellCustomization out;
  for (size_t mi = 0; mi < m; ++mi) {
    const NodeId u = cell.members[mi];
    ATIS_ASSIGN_OR_RETURN(auto edges, store->FetchAdjacency(u));
    std::vector<graph::Edge> cross;
    for (const auto& e : edges) {
      if (topo.CellOf(e.end) == c) {
        fwd_adj[mi].emplace_back(topo.MemberIndexOf(e.end), e.cost);
        rev_adj[static_cast<size_t>(topo.MemberIndexOf(e.end))]
            .emplace_back(static_cast<int32_t>(mi), e.cost);
      } else {
        cross.push_back({e.end, e.cost});
      }
    }
    if (!cross.empty()) out.cross.emplace_back(u, std::move(cross));
  }
  out.tables.incell_dist.resize(m);
  out.tables.incell_pred.resize(m);
  for (size_t mi = 0; mi < m; ++mi) {
    MemberTree fwd = MemberDijkstra(fwd_adj, static_cast<int32_t>(mi));
    out.tables.incell_dist[mi] = std::move(fwd.dist);
    out.tables.incell_pred[mi] = std::move(fwd.parent);
  }
  out.tables.fwd_dist.resize(b);
  out.tables.fwd_pred.resize(b);
  out.tables.rev_dist.resize(b);
  out.tables.rev_succ.resize(b);
  for (size_t bi = 0; bi < b; ++bi) {
    const size_t root = static_cast<size_t>(cell.boundary_member_idx[bi]);
    out.tables.fwd_dist[bi] = out.tables.incell_dist[root];
    out.tables.fwd_pred[bi] = out.tables.incell_pred[root];
    // A reverse-graph tree's parents are forward-path successors: the
    // reversed path root..m, read backwards, is the forward path m..root.
    MemberTree rev = MemberDijkstra(rev_adj, static_cast<int32_t>(root));
    out.tables.rev_dist[bi] = std::move(rev.dist);
    out.tables.rev_succ[bi] = std::move(rev.parent);
  }
  return out;
}

void PublishCustomizationMetrics(double seconds, uint64_t metric_version,
                                 size_t cells_computed) {
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("atis_overlay_customize_seconds",
               "Wall time of the latest overlay (re)customization")
      .Set(seconds);
  reg.GetGauge("atis_overlay_metric_version",
               "Metric version of the installed overlay customization")
      .Set(static_cast<double>(metric_version));
  reg.GetCounter("atis_overlay_customizations_total",
                 "Overlay customization passes (full or incremental)")
      .Increment();
  reg.GetCounter("atis_overlay_cells_recustomized_total",
                 "Cells whose shortcut tables were (re)computed")
      .Increment(cells_computed);
}

}  // namespace

Result<OverlayTopology> OverlayTopology::Build(const Graph& g,
                                               const OverlayOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("overlay needs a non-empty graph");
  }
  if (options.cell_order > kMaxCellOrder) {
    return Status::InvalidArgument("overlay cell_order must be <= 8");
  }
  OverlayTopology topo;
  topo.cell_order_ = options.cell_order;
  const size_t n = g.num_nodes();
  topo.points_.reserve(n);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    topo.points_.push_back({RelationalGraphStore::Quantise(g.point(u).x),
                            RelationalGraphStore::Quantise(g.point(u).y)});
  }
  double min_x = topo.points_[0].x, max_x = min_x;
  double min_y = topo.points_[0].y, max_y = min_y;
  for (const graph::Point& p : topo.points_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const uint32_t side = 1u << topo.cell_order_;
  const double ext_x = max_x - min_x;
  const double ext_y = max_y - min_y;
  // Hilbert keys of occupied grid cells, densified in curve order so cell
  // ids are themselves spatially clustered (near cells get near ids).
  std::vector<uint64_t> keys(n, 0);
  if (ext_x > 0.0 || ext_y > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      const auto clamp_cell = [side](double v, double lo,
                                     double ext) -> uint32_t {
        if (ext <= 0.0) return 0;
        const auto cell = static_cast<int64_t>((v - lo) / ext *
                                               static_cast<double>(side));
        return static_cast<uint32_t>(
            std::clamp<int64_t>(cell, 0, static_cast<int64_t>(side) - 1));
      };
      keys[i] = graph::HilbertIndex(topo.cell_order_,
                                    clamp_cell(topo.points_[i].x, min_x,
                                               ext_x),
                                    clamp_cell(topo.points_[i].y, min_y,
                                               ext_y));
    }
  }
  std::vector<uint64_t> used = keys;
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  topo.cell_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    topo.cell_of_[i] = static_cast<int32_t>(
        std::lower_bound(used.begin(), used.end(), keys[i]) - used.begin());
  }
  topo.cells_.resize(used.size());
  ATIS_RETURN_NOT_OK(topo.Finalize(g));
  return topo;
}

Status OverlayTopology::Finalize(const Graph& g) {
  const size_t n = cell_of_.size();
  member_idx_of_.assign(n, -1);
  boundary_idx_of_.assign(n, -1);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    Cell& cell = cells_[static_cast<size_t>(cell_of_[static_cast<size_t>(u)])];
    member_idx_of_[static_cast<size_t>(u)] =
        static_cast<int32_t>(cell.members.size());
    cell.members.push_back(u);  // ascending u => members sorted by id
  }
  std::vector<uint8_t> is_boundary(n, 0);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    for (const graph::Edge& e : g.Neighbors(u)) {
      if (cell_of_[static_cast<size_t>(u)] !=
          cell_of_[static_cast<size_t>(e.to)]) {
        is_boundary[static_cast<size_t>(u)] = 1;
        is_boundary[static_cast<size_t>(e.to)] = 1;
      }
    }
  }
  num_boundary_ = 0;
  for (Cell& cell : cells_) {
    for (size_t mi = 0; mi < cell.members.size(); ++mi) {
      const NodeId u = cell.members[mi];
      if (!is_boundary[static_cast<size_t>(u)]) continue;
      boundary_idx_of_[static_cast<size_t>(u)] =
          static_cast<int32_t>(cell.boundary.size());
      cell.boundary.push_back(u);
      cell.boundary_member_idx.push_back(static_cast<int32_t>(mi));
    }
    num_boundary_ += cell.boundary.size();
  }
  // Shortcut topology: which boundary pairs of each cell an intra-cell
  // path connects. Plain BFS — reachability does not depend on costs.
  num_shortcuts_ = 0;
  for (size_t c = 0; c < cells_.size(); ++c) {
    Cell& cell = cells_[c];
    const size_t m = cell.members.size();
    std::vector<std::vector<int32_t>> adj(m);
    for (size_t mi = 0; mi < m; ++mi) {
      for (const graph::Edge& e : g.Neighbors(cell.members[mi])) {
        if (cell_of_[static_cast<size_t>(e.to)] == static_cast<int32_t>(c)) {
          adj[mi].push_back(member_idx_of_[static_cast<size_t>(e.to)]);
        }
      }
    }
    cell.shortcut_targets.assign(cell.boundary.size(), {});
    std::vector<uint8_t> seen(m);
    for (size_t bi = 0; bi < cell.boundary.size(); ++bi) {
      std::fill(seen.begin(), seen.end(), 0);
      std::vector<int32_t> stack{cell.boundary_member_idx[bi]};
      seen[static_cast<size_t>(stack.back())] = 1;
      while (!stack.empty()) {
        const int32_t at = stack.back();
        stack.pop_back();
        for (const int32_t next : adj[static_cast<size_t>(at)]) {
          if (!seen[static_cast<size_t>(next)]) {
            seen[static_cast<size_t>(next)] = 1;
            stack.push_back(next);
          }
        }
      }
      for (size_t bj = 0; bj < cell.boundary.size(); ++bj) {
        if (bj != bi &&
            seen[static_cast<size_t>(cell.boundary_member_idx[bj])]) {
          cell.shortcut_targets[bi].push_back(static_cast<int32_t>(bj));
        }
      }
      num_shortcuts_ += cell.shortcut_targets[bi].size();
    }
  }
  return Status::OK();
}

Result<OverlayTopology> OverlayTopology::FromRows(
    const std::vector<RelationalGraphStore::OverlayCellRow>& cells,
    const std::vector<RelationalGraphStore::OverlayShortcutRow>& links,
    const Graph& g, uint32_t cell_order) {
  if (cells.size() != g.num_nodes()) {
    return Status::InvalidArgument(
        "overlay cell rows do not cover the graph's nodes");
  }
  OverlayTopology topo;
  topo.cell_order_ = cell_order;
  const size_t n = g.num_nodes();
  topo.cell_of_.assign(n, -1);
  int32_t max_cell = 0;
  for (const auto& row : cells) {
    if (row.node < 0 || static_cast<size_t>(row.node) >= n || row.cell < 0 ||
        topo.cell_of_[static_cast<size_t>(row.node)] != -1) {
      return Status::InvalidArgument("invalid or duplicate overlay cell row");
    }
    topo.cell_of_[static_cast<size_t>(row.node)] = row.cell;
    max_cell = std::max(max_cell, row.cell);
  }
  topo.points_.reserve(n);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    topo.points_.push_back({RelationalGraphStore::Quantise(g.point(u).x),
                            RelationalGraphStore::Quantise(g.point(u).y)});
  }
  topo.cells_.resize(static_cast<size_t>(max_cell) + 1);
  ATIS_RETURN_NOT_OK(topo.Finalize(g));
  // The persisted boundary flags and shortcut pairs must agree with the
  // structure this graph implies — a mismatched map file is corruption,
  // not a quiet re-derivation.
  for (const auto& row : cells) {
    if (topo.IsBoundary(row.node) != row.is_boundary) {
      return Status::InvalidArgument(
          "persisted overlay boundary flags do not match the graph");
    }
  }
  size_t persisted = 0;
  for (const auto& link : links) {
    if (link.cell < 0 || static_cast<size_t>(link.cell) >= topo.cells_.size()) {
      return Status::InvalidArgument("overlay shortcut row names no cell");
    }
    const int32_t bi = topo.BoundaryIndexOf(link.from);
    const int32_t bj = topo.BoundaryIndexOf(link.to);
    if (bi < 0 || bj < 0 || topo.CellOf(link.from) != link.cell ||
        topo.CellOf(link.to) != link.cell) {
      return Status::InvalidArgument(
          "overlay shortcut row references a non-boundary endpoint");
    }
    const auto& targets =
        topo.cells_[static_cast<size_t>(link.cell)]
            .shortcut_targets[static_cast<size_t>(bi)];
    if (std::find(targets.begin(), targets.end(), bj) == targets.end()) {
      return Status::InvalidArgument(
          "persisted overlay shortcut is not implied by the graph");
    }
    ++persisted;
  }
  if (persisted != topo.num_shortcuts_) {
    return Status::InvalidArgument(
        "persisted overlay shortcut set is incomplete");
  }
  return topo;
}

std::vector<RelationalGraphStore::OverlayCellRow>
OverlayTopology::ToCellRows() const {
  std::vector<RelationalGraphStore::OverlayCellRow> rows;
  rows.reserve(cell_of_.size());
  for (NodeId u = 0; u < static_cast<NodeId>(cell_of_.size()); ++u) {
    rows.push_back({u, CellOf(u), IsBoundary(u)});
  }
  return rows;
}

std::vector<RelationalGraphStore::OverlayShortcutRow>
OverlayTopology::ToShortcutRows() const {
  std::vector<RelationalGraphStore::OverlayShortcutRow> rows;
  rows.reserve(num_shortcuts_);
  for (size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    for (size_t bi = 0; bi < cell.boundary.size(); ++bi) {
      for (const int32_t bj : cell.shortcut_targets[bi]) {
        rows.push_back({static_cast<int32_t>(c), cell.boundary[bi],
                        cell.boundary[static_cast<size_t>(bj)]});
      }
    }
  }
  return rows;
}

Status OverlayTopology::SaveToFile(const std::string& path) const {
  std::ostringstream out;
  out << "ATISO1\n";
  out << "cell_order " << cell_order_ << "\n";
  out << "nodes " << cell_of_.size() << "\n";
  for (NodeId u = 0; u < static_cast<NodeId>(cell_of_.size()); ++u) {
    out << CellOf(u) << ' ' << (IsBoundary(u) ? 1 : 0) << "\n";
  }
  const auto links = ToShortcutRows();
  out << "shortcuts " << links.size() << "\n";
  for (const auto& link : links) {
    out << link.cell << ' ' << link.from << ' ' << link.to << "\n";
  }
  return WriteFileAtomic(path, out.str());
}

Result<OverlayTopology> OverlayTopology::LoadFromFile(
    const std::string& path, const Graph& g) {
  std::ifstream in(path);
  if (!in) return Status::Unavailable("cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "ATISO1") {
    return Status::InvalidArgument(path + " is not an ATISO1 overlay file");
  }
  std::string tag;
  uint32_t cell_order = 0;
  size_t n = 0;
  if (!(in >> tag >> cell_order) || tag != "cell_order" ||
      cell_order > kMaxCellOrder) {
    return Status::InvalidArgument("bad ATISO1 cell_order header");
  }
  if (!(in >> tag >> n) || tag != "nodes" || n != g.num_nodes()) {
    return Status::InvalidArgument(
        "ATISO1 node count does not match the graph");
  }
  std::vector<RelationalGraphStore::OverlayCellRow> cells;
  cells.reserve(n);
  for (size_t u = 0; u < n; ++u) {
    int32_t cell = 0;
    int flag = 0;
    if (!(in >> cell >> flag)) {
      return Status::InvalidArgument("truncated ATISO1 cell table");
    }
    cells.push_back({static_cast<NodeId>(u), cell, flag != 0});
  }
  size_t num_links = 0;
  if (!(in >> tag >> num_links) || tag != "shortcuts") {
    return Status::InvalidArgument("bad ATISO1 shortcuts header");
  }
  std::vector<RelationalGraphStore::OverlayShortcutRow> links;
  links.reserve(num_links);
  for (size_t i = 0; i < num_links; ++i) {
    RelationalGraphStore::OverlayShortcutRow link;
    if (!(in >> link.cell >> link.from >> link.to)) {
      return Status::InvalidArgument("truncated ATISO1 shortcut table");
    }
    links.push_back(link);
  }
  return FromRows(cells, links, g, cell_order);
}

Result<std::shared_ptr<const OverlayCustomization>> CustomizeOverlay(
    const OverlayTopology& topology,
    std::span<RelationalGraphStore* const> stores,
    uint64_t metric_version) {
  if (stores.empty()) {
    return Status::InvalidArgument("CustomizeOverlay needs a store");
  }
  const auto started = std::chrono::steady_clock::now();
  const size_t num_cells = topology.num_cells();
  auto custom = std::make_shared<OverlayCustomization>();
  custom->metric_version_ = metric_version;
  custom->cells_.resize(num_cells);
  custom->cross_.resize(topology.num_nodes());

  // One thread per store replica, each customizing a disjoint cell
  // stripe; the shared buffer pool sees only read traffic. The
  // single-store case runs inline.
  const size_t num_threads = std::min(stores.size(), num_cells);
  std::vector<std::vector<CellCustomization>> done(num_threads);
  std::vector<Status> status(num_threads, Status::OK());
  auto worker = [&](size_t t) {
    for (size_t c = t; c < num_cells; c += num_threads) {
      auto r = CustomizeCell(topology, static_cast<int32_t>(c), stores[t]);
      if (!r.ok()) {
        status[t] = r.status();
        return;
      }
      done[t].push_back(std::move(r).value());
    }
  };
  if (num_threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }
  for (size_t t = 0; t < num_threads; ++t) {
    ATIS_RETURN_NOT_OK(status[t]);
    size_t i = 0;
    for (size_t c = t; c < num_cells; c += num_threads, ++i) {
      CellCustomization& cc = done[t][i];
      custom->cells_[c] = std::make_shared<const
          OverlayCustomization::CellTables>(std::move(cc.tables));
      for (auto& [node, arcs] : cc.cross) {
        custom->cross_[static_cast<size_t>(node)] = std::move(arcs);
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  PublishCustomizationMetrics(seconds, metric_version, num_cells);
  return std::shared_ptr<const OverlayCustomization>(std::move(custom));
}

Result<std::shared_ptr<const OverlayCustomization>> RecustomizeForEdge(
    const OverlayTopology& topology, const OverlayCustomization& previous,
    NodeId u, NodeId v, RelationalGraphStore* store,
    size_t* cells_changed) {
  if (u < 0 || static_cast<size_t>(u) >= topology.num_nodes() || v < 0 ||
      static_cast<size_t>(v) >= topology.num_nodes()) {
    return Status::InvalidArgument("edge endpoints outside the overlay");
  }
  const auto started = std::chrono::steady_clock::now();
  auto custom = std::make_shared<OverlayCustomization>();
  custom->metric_version_ = previous.metric_version_ + 1;
  custom->cells_ = previous.cells_;  // shared: copy-on-write per cell
  custom->cross_ = previous.cross_;
  size_t changed = 0;
  if (topology.CellOf(u) == topology.CellOf(v)) {
    // Same-cell edge: the cell's restricted shortest paths may all have
    // moved; recompute its tables (and, incidentally, its members' cross
    // arcs — unchanged, but they ride along with the adjacency fetch).
    const int32_t c = topology.CellOf(u);
    ATIS_ASSIGN_OR_RETURN(CellCustomization cc,
                          CustomizeCell(topology, c, store));
    custom->cells_[static_cast<size_t>(c)] = std::make_shared<const
        OverlayCustomization::CellTables>(std::move(cc.tables));
    for (auto& [node, arcs] : cc.cross) {
      custom->cross_[static_cast<size_t>(node)] = std::move(arcs);
    }
    changed = 1;
  } else {
    // Cross-cell edge: only u's cross arcs carry the edge; no cell's
    // intra-cell tables are touched. Re-read u's adjacency so the patched
    // arc is exactly the store's float-rounded cost.
    ATIS_ASSIGN_OR_RETURN(auto edges, store->FetchAdjacency(u));
    std::vector<graph::Edge> cross;
    for (const auto& e : edges) {
      if (topology.CellOf(e.end) != topology.CellOf(u)) {
        cross.push_back({e.end, e.cost});
      }
    }
    custom->cross_[static_cast<size_t>(u)] = std::move(cross);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  PublishCustomizationMetrics(seconds, custom->metric_version_, changed);
  if (cells_changed != nullptr) *cells_changed = changed;
  return std::shared_ptr<const OverlayCustomization>(std::move(custom));
}

Result<std::shared_ptr<const OverlayCustomization>> RecustomizeForEdges(
    const OverlayTopology& topology, const OverlayCustomization& previous,
    std::span<const std::pair<NodeId, NodeId>> edges,
    RelationalGraphStore* store, size_t* cells_changed,
    uint64_t metric_version) {
  const auto started = std::chrono::steady_clock::now();
  // Dedupe the work across the batch: a cell rebuild subsumes every
  // same-cell update inside it, a node adjacency re-read subsumes every
  // cross-cell update out of that node.
  std::set<int32_t> cells_to_rebuild;
  std::set<NodeId> cross_nodes;
  for (const auto& [u, v] : edges) {
    if (u < 0 || static_cast<size_t>(u) >= topology.num_nodes() || v < 0 ||
        static_cast<size_t>(v) >= topology.num_nodes()) {
      return Status::InvalidArgument("edge endpoints outside the overlay");
    }
    if (topology.CellOf(u) == topology.CellOf(v)) {
      cells_to_rebuild.insert(topology.CellOf(u));
    } else {
      cross_nodes.insert(u);
    }
  }
  auto custom = std::make_shared<OverlayCustomization>();
  custom->metric_version_ = metric_version;
  custom->cells_ = previous.cells_;  // shared: copy-on-write per cell
  custom->cross_ = previous.cross_;
  for (const int32_t c : cells_to_rebuild) {
    ATIS_ASSIGN_OR_RETURN(CellCustomization cc,
                          CustomizeCell(topology, c, store));
    custom->cells_[static_cast<size_t>(c)] = std::make_shared<const
        OverlayCustomization::CellTables>(std::move(cc.tables));
    for (auto& [node, arcs] : cc.cross) {
      custom->cross_[static_cast<size_t>(node)] = std::move(arcs);
      cross_nodes.erase(node);  // the rebuild already refreshed it
    }
  }
  for (const NodeId u : cross_nodes) {
    ATIS_ASSIGN_OR_RETURN(auto adj, store->FetchAdjacency(u));
    std::vector<graph::Edge> cross;
    for (const auto& e : adj) {
      if (topology.CellOf(e.end) != topology.CellOf(u)) {
        cross.push_back({e.end, e.cost});
      }
    }
    custom->cross_[static_cast<size_t>(u)] = std::move(cross);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  PublishCustomizationMetrics(seconds, metric_version,
                              cells_to_rebuild.size());
  if (cells_changed != nullptr) *cells_changed = cells_to_rebuild.size();
  return std::shared_ptr<const OverlayCustomization>(std::move(custom));
}

Result<std::shared_ptr<const OverlayTopology>> PersistAndLoadOverlayTopology(
    const OverlayTopology& topology, RelationalGraphStore* store,
    const Graph& g) {
  storage::IoMeter& meter = store->node_relation().pool()->disk()->meter();
  const storage::IoCounters before = meter.counters();
  const auto started = std::chrono::steady_clock::now();

  ATIS_RETURN_NOT_OK(store->StoreOverlayTopology(topology.ToCellRows(),
                                                 topology.ToShortcutRows()));
  ATIS_ASSIGN_OR_RETURN(auto rows, store->LoadOverlayTopology());
  ATIS_ASSIGN_OR_RETURN(
      OverlayTopology loaded,
      OverlayTopology::FromRows(rows.first, rows.second, g,
                                topology.cell_order()));

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  const storage::IoCounters delta = meter.counters() - before;
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("atis_overlay_cells",
               "Cells of the installed overlay partition")
      .Set(static_cast<double>(loaded.num_cells()));
  reg.GetGauge("atis_overlay_boundary_nodes",
               "Boundary nodes of the installed overlay partition")
      .Set(static_cast<double>(loaded.num_boundary_nodes()));
  reg.GetGauge("atis_overlay_shortcuts",
               "Boundary-to-boundary shortcut pairs in the overlay")
      .Set(static_cast<double>(loaded.num_shortcuts()));
  reg.GetGauge("atis_overlay_preprocess_seconds",
               "Wall time of the latest overlay-topology persist + load")
      .Set(seconds);
  reg.GetCounter("atis_overlay_preprocess_blocks_read_total",
                 "Blocks read persisting/loading overlay relations")
      .Increment(delta.blocks_read);
  reg.GetCounter("atis_overlay_preprocess_blocks_written_total",
                 "Blocks written persisting/loading overlay relations")
      .Increment(delta.blocks_written);
  return std::make_shared<const OverlayTopology>(std::move(loaded));
}

}  // namespace atis::core
