// Route evaluation and route display — the other two ATIS route-planning
// services named in Section 1.1 (route computation being the algorithms).
#pragma once

#include <string>
#include <vector>

#include "core/search_types.h"
#include "graph/graph.h"

namespace atis::core {

/// Attributes of one segment of an evaluated route.
struct SegmentReport {
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  double cost = 0.0;
  double cumulative_cost = 0.0;
  double heading_deg = 0.0;  ///< compass heading, 0 = east, CCW positive
};

/// Attributes of a whole route between two points.
struct RouteEvaluation {
  bool valid = false;  ///< every consecutive pair is an edge of the graph
  double total_cost = 0.0;
  size_t num_segments = 0;
  double straight_line_distance = 0.0;
  /// total geometric length of the polyline / straight-line distance
  /// (1.0 = perfectly direct).
  double directness = 0.0;
  std::vector<SegmentReport> segments;
};

/// Evaluates a node sequence against a graph: per-segment and total costs.
/// A path that uses a non-existent edge yields valid = false (segments up
/// to the break are still reported).
RouteEvaluation EvaluateRoute(const graph::Graph& g,
                              const std::vector<graph::NodeId>& path);

/// Turn-by-turn text directions ("continue", "turn left", ...), derived
/// from segment headings.
std::string RenderDirections(const graph::Graph& g,
                             const std::vector<graph::NodeId>& path);

/// ASCII map of a route on a `width` x `height` canvas scaled to the
/// graph's bounding box: '.' empty, '*' route, 'S' source, 'D' destination.
std::string RenderAsciiMap(const graph::Graph& g,
                           const std::vector<graph::NodeId>& path,
                           int width = 60, int height = 24);

}  // namespace atis::core
