#include "core/route_ranking.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atis::core {

size_t CountTurns(const graph::Graph& g,
                  const std::vector<graph::NodeId>& path,
                  double threshold_deg) {
  const RouteEvaluation eval = EvaluateRoute(g, path);
  size_t turns = 0;
  for (size_t i = 1; i < eval.segments.size(); ++i) {
    double delta = eval.segments[i].heading_deg -
                   eval.segments[i - 1].heading_deg;
    while (delta > 180.0) delta -= 360.0;
    while (delta < -180.0) delta += 360.0;
    if (std::abs(delta) >= threshold_deg) ++turns;
  }
  return turns;
}

Result<std::vector<RankedRoute>> RankRoutes(
    const graph::Graph& g,
    const std::vector<std::vector<graph::NodeId>>& candidates,
    const RankingWeights& weights) {
  const double total_weight =
      weights.cost + weights.directness + weights.turns;
  if (weights.cost < 0.0 || weights.directness < 0.0 ||
      weights.turns < 0.0 || total_weight <= 0.0) {
    return Status::InvalidArgument(
        "ranking weights must be non-negative with a positive sum");
  }

  std::vector<RankedRoute> routes;
  for (const auto& path : candidates) {
    const RouteEvaluation eval = EvaluateRoute(g, path);
    if (!eval.valid) continue;
    RankedRoute r;
    r.path = path;
    r.cost = eval.total_cost;
    r.directness = eval.directness;
    r.turns = CountTurns(g, path);
    routes.push_back(std::move(r));
  }
  if (routes.empty()) return routes;

  // Min-max normalise each criterion over the candidate set.
  auto normalise = [&](auto getter) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const RankedRoute& r : routes) {
      lo = std::min(lo, getter(r));
      hi = std::max(hi, getter(r));
    }
    const double span = hi - lo;
    std::vector<double> out;
    out.reserve(routes.size());
    for (const RankedRoute& r : routes) {
      out.push_back(span > 0.0 ? (getter(r) - lo) / span : 0.0);
    }
    return out;
  };
  const auto n_cost =
      normalise([](const RankedRoute& r) { return r.cost; });
  const auto n_direct =
      normalise([](const RankedRoute& r) { return r.directness; });
  const auto n_turns = normalise(
      [](const RankedRoute& r) { return static_cast<double>(r.turns); });

  for (size_t i = 0; i < routes.size(); ++i) {
    routes[i].score = (weights.cost * n_cost[i] +
                       weights.directness * n_direct[i] +
                       weights.turns * n_turns[i]) /
                      total_weight;
  }
  std::stable_sort(routes.begin(), routes.end(),
                   [](const RankedRoute& a, const RankedRoute& b) {
                     return a.score < b.score;
                   });
  return routes;
}

}  // namespace atis::core
