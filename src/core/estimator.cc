#include "core/estimator.h"

#include <cmath>
#include <limits>
#include <vector>

#include "core/sssp.h"

namespace atis::core {

std::string_view EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kZero:
      return "zero";
    case EstimatorKind::kEuclidean:
      return "euclidean";
    case EstimatorKind::kManhattan:
      return "manhattan";
    case EstimatorKind::kLandmark:
      return "landmark";
  }
  return "?";
}

namespace {

class ZeroEstimator final : public Estimator {
 public:
  double Estimate(const graph::Point&, const graph::Point&) const override {
    return 0.0;
  }
  EstimatorKind kind() const override { return EstimatorKind::kZero; }
};

class EuclideanEstimator final : public Estimator {
 public:
  explicit EuclideanEstimator(double scale) : scale_(scale) {}
  double Estimate(const graph::Point& a,
                  const graph::Point& b) const override {
    return scale_ * std::hypot(a.x - b.x, a.y - b.y);
  }
  EstimatorKind kind() const override { return EstimatorKind::kEuclidean; }

 private:
  double scale_;
};

class ManhattanEstimator final : public Estimator {
 public:
  explicit ManhattanEstimator(double scale) : scale_(scale) {}
  double Estimate(const graph::Point& a,
                  const graph::Point& b) const override {
    return scale_ * (std::abs(a.x - b.x) + std::abs(a.y - b.y));
  }
  EstimatorKind kind() const override { return EstimatorKind::kManhattan; }

 private:
  double scale_;
};

}  // namespace

std::unique_ptr<Estimator> MakeEstimator(EstimatorKind kind,
                                         double cost_per_unit_distance) {
  switch (kind) {
    case EstimatorKind::kZero:
      return std::make_unique<ZeroEstimator>();
    case EstimatorKind::kEuclidean:
      return std::make_unique<EuclideanEstimator>(cost_per_unit_distance);
    case EstimatorKind::kManhattan:
      return std::make_unique<ManhattanEstimator>(cost_per_unit_distance);
    case EstimatorKind::kLandmark:
      return nullptr;  // needs a LandmarkSet: MakeLandmarkEstimator
  }
  return nullptr;
}

bool EstimatorIsAdmissibleOn(const Estimator& estimator,
                             const graph::Graph& g) {
  constexpr double kSlack = 1e-9;  // float noise tolerance
  for (graph::NodeId s = 0; s < static_cast<graph::NodeId>(g.num_nodes());
       ++s) {
    const auto tree = SingleSourceDijkstra(g, s);
    if (!tree.ok()) return false;
    for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
         ++v) {
      if (!tree->Reaches(v)) continue;
      const double h = estimator.EstimateNodes(s, g.point(s), v, g.point(v));
      if (h > tree->Distance(v) + kSlack) return false;
    }
  }
  return true;
}

}  // namespace atis::core
