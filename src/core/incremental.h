// Incremental shortest-path maintenance under traffic changes.
//
// An ATIS server holds shortest-path trees that must track real-time cost
// updates (Section 1.1's "coupled with real-time traffic information").
// Recomputing from scratch on every incident wastes exactly the work the
// paper is trying to avoid; this module repairs an existing tree after a
// single edge's cost changes, touching only the affected region
// (Ramalingam–Reps style):
//
//   * cost decrease  — relax outward from the edge's head; only nodes
//     that actually improve are re-labelled;
//   * cost increase / removal — invalidate the tree descendants that
//     routed through the edge, re-seed them from their unaffected
//     neighbours, and run a bounded Dijkstra over the affected set only.
#pragma once

#include "core/sssp.h"
#include "graph/graph.h"
#include "util/status.h"

namespace atis::core {

struct IncrementalStats {
  /// Nodes whose label was invalidated by the change.
  size_t nodes_invalidated = 0;
  /// Nodes popped from the repair queue (compare against a from-scratch
  /// run's n expansions).
  size_t nodes_rescanned = 0;
};

/// Repairs `old_tree` (computed on the pre-change graph) into the exact
/// shortest-path tree of `updated_graph`, given that the only difference
/// is the cost of edges u -> v (changed, added, or removed; with parallel
/// edges the cheapest survivor counts).
///
/// `reverse` must be ReverseOf(updated_graph) when provided (repeated
/// repairs should share it); pass nullptr to have it built internally.
/// InvalidArgument when the node counts disagree or u/v are unknown.
Result<ShortestPathTree> RepairAfterEdgeChange(
    const graph::Graph& updated_graph, const ShortestPathTree& old_tree,
    graph::NodeId u, graph::NodeId v,
    const graph::Graph* reverse = nullptr,
    IncrementalStats* stats = nullptr);

}  // namespace atis::core
