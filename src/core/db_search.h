// Database-resident path computation (the paper's EQUEL programs).
//
// Each algorithm runs against the relation pair (S, R) of a
// RelationalGraphStore through QUEL-style statements — RETRIEVE scans,
// REPLACE updates, APPEND/DELETE on auxiliary relations, and relational
// joins — with the buffer pool evicted at statement boundaries
// (statement-at-a-time, INGRES single-user mode). Every block access is
// metered, so a run reports both the paper's iteration count and its
// execution cost in Table 4A units.
//
// A* implementation versions (Section 5.3):
//   version 1: frontierSet as a separate relation (APPEND/DELETE, hash
//              index maintenance), Euclidean estimator, and a resultant
//              node relation grown incrementally as nodes are discovered;
//   version 2: frontierSet as R's status attribute (REPLACE), Euclidean;
//   version 3: status attribute, Manhattan estimator;
//   version 4: status attribute, landmark (ALT) estimator — precomputed
//              triangle-inequality lower bounds, loaded from the store's
//              landmarkDist relation via EnableLandmarks().
//   version 5: partition-boundary overlay (core/overlay.h) — A* over
//              boundary nodes only, using per-cell customized distance
//              tables; the store is touched just for the endpoint probes
//              (same-cell queries answer from the customized in-cell
//              all-pairs table). Needs EnableOverlay(); uses the landmark
//              estimator as the overlay heuristic when EnableLandmarks()
//              was also called.
#pragma once

#include <memory>
#include <unordered_set>

#include "core/estimator.h"
#include "core/search_types.h"
#include "graph/relational_graph.h"
#include "relational/join.h"
#include "storage/buffer_pool.h"
#include "util/deadline.h"

namespace atis::core {

class BatchContext;  // core/batch_engine.h
struct OverlayIndex;  // core/overlay.h

enum class AStarVersion { kV1 = 1, kV2 = 2, kV3 = 3, kV4 = 4, kV5 = 5 };
std::string_view AStarVersionName(AStarVersion v);

enum class FrontierImpl {
  kSeparateRelation,  ///< APPEND/DELETE on a dedicated frontier relation
  kStatusAttribute,   ///< REPLACE of R.status (the paper's preference)
};

struct DbSearchOptions {
  /// Frontier duplicate management (only observable with
  /// kSeparateRelation; the status attribute is duplicate-free by
  /// construction).
  DuplicatePolicy duplicate_policy = DuplicatePolicy::kAvoid;
  /// Evict the buffer pool between statements (the paper's execution
  /// model). Turning this off lets statements share cached blocks.
  bool statement_at_a_time = true;
  /// Join strategy for the Iterative algorithm's step-6 join.
  relational::JoinStrategy join_strategy = relational::JoinStrategy::kAuto;
  /// Cost parameters used both by the auto join optimizer and to convert
  /// metered I/O into reported cost units.
  storage::CostParams cost_params;
  /// Propagated to PathResult::optimality_guaranteed for A*.
  bool estimator_known_admissible = true;
  /// Number of best-ranked frontier nodes whose S adjacency pages are
  /// hinted to BufferPool::Prefetch after each frontier scan (0 = off).
  /// Effective only when the pool's prefetch workers are running and
  /// `statement_at_a_time` is false: a prefetch keeps its frame pinned
  /// while the read is in flight, which the paper-mode EvictAll between
  /// statements cannot tolerate, so hints are suppressed in that mode.
  size_t prefetch_depth = 0;
};

class DbSearchEngine {
 public:
  /// `store` must be loaded; `pool` is the buffer pool all statements run
  /// through (shared with the store's relations).
  DbSearchEngine(graph::RelationalGraphStore* store,
                 storage::BufferPool* pool, DbSearchOptions options = {});

  /// Iterative breadth-first algorithm (Figure 1 / Table 2). All search
  /// entry points take an optional cooperative deadline, checked once per
  /// iteration/expansion; an expired deadline aborts the run with
  /// kDeadlineExceeded (the store's working state stays consistent — the
  /// next run begins with its own ResetSearchState).
  ///
  /// All entry points also take an optional BatchContext: when non-null,
  /// per-node adjacency fetches and prefetch hints route through the
  /// batch's shared caches (core/batch_engine.h). Results are identical
  /// to a `batch == nullptr` run — only the block I/O charged to this
  /// query shrinks when an earlier batch member already fetched a node.
  /// The Iterative algorithm reaches neighbours through a relational join
  /// rather than per-node fetches, so it accepts the context for
  /// interface uniformity but has no scan to share.
  Result<PathResult> Iterative(graph::NodeId source,
                               graph::NodeId destination,
                               const Deadline& deadline = {},
                               BatchContext* batch = nullptr);

  /// Dijkstra's algorithm (Figure 2 / Table 3).
  Result<PathResult> Dijkstra(graph::NodeId source,
                              graph::NodeId destination,
                              const Deadline& deadline = {},
                              BatchContext* batch = nullptr);

  /// A* in one of the implementation versions (1-3 from the paper, 4 the
  /// ALT extension, 5 the customizable overlay). Version 4 needs
  /// EnableLandmarks() first; version 5 needs EnableOverlay() first.
  Result<PathResult> AStar(graph::NodeId source, graph::NodeId destination,
                           AStarVersion version,
                           const Deadline& deadline = {},
                           BatchContext* batch = nullptr);

  /// Installs the estimator Version 4 runs with (typically
  /// MakeLandmarkEstimator over a table loaded from this store's
  /// landmarkDist relation — see core/landmarks.h). InvalidArgument on
  /// null.
  Status EnableLandmarks(std::shared_ptr<const Estimator> estimator);
  bool landmarks_enabled() const { return landmark_estimator_ != nullptr; }

  /// Installs the overlay index Version 5 searches (topology +
  /// customization for the store's current metric — see core/overlay.h).
  /// May be called again after a re-customization, but like
  /// UpdateEdgeCost it must not race with an in-flight run on this
  /// engine (RouteServer quiesces its workers first). InvalidArgument on
  /// null or incomplete indexes.
  Status EnableOverlay(std::shared_ptr<const OverlayIndex> overlay);
  bool overlay_enabled() const { return overlay_ != nullptr; }

  /// A* with an explicit estimator/frontier combination (the versions
  /// above are canned configurations of this).
  Result<PathResult> AStarCustom(graph::NodeId source,
                                 graph::NodeId destination,
                                 const Estimator& estimator,
                                 FrontierImpl frontier,
                                 const Deadline& deadline = {});

  const DbSearchOptions& options() const { return options_; }

 private:
  /// Shared status-attribute best-first engine; Dijkstra when `estimator`
  /// is null (then closed nodes are never reopened). `label` names the
  /// run in trace spans and per-algorithm metrics.
  Result<PathResult> BestFirstStatusAttribute(graph::NodeId source,
                                              graph::NodeId destination,
                                              const Estimator* estimator,
                                              std::string_view label,
                                              const Deadline& deadline,
                                              BatchContext* batch);

  Result<PathResult> AStarSeparateRelation(graph::NodeId source,
                                           graph::NodeId destination,
                                           const Estimator& estimator,
                                           std::string_view label,
                                           const Deadline& deadline,
                                           BatchContext* batch);

  /// Version 5: A* over the overlay's boundary graph. The store is
  /// probed for the two endpoints; same-cell pairs additionally consult
  /// the customized in-cell all-pairs table and the cheaper of the two
  /// routes wins (the table cost also bounds the overlay search).
  Result<PathResult> OverlaySearch(graph::NodeId source,
                                   graph::NodeId destination,
                                   const Deadline& deadline,
                                   BatchContext* batch);

  /// The adjacency of `u`: through `batch`'s shared cache when non-null,
  /// else a private store fetch. Either way the blocks actually read are
  /// metered on the calling thread.
  Result<std::vector<graph::RelationalGraphStore::EdgeRow>> FetchAdjacency(
      graph::NodeId u, BatchContext* batch);

  /// Follows R.pred from the destination. Charged reads, but performed
  /// after the run's stats snapshot (route assembly, not route search).
  Result<std::vector<graph::NodeId>> ReconstructFromStore(
      graph::NodeId source, graph::NodeId destination);

  Status EndStatement();

  /// Effective prefetch depth for this run (0 when suppressed).
  size_t PrefetchDepth() const;
  /// Hints the adjacency pages of `frontier` (best-first ranked node ids)
  /// to the pool's background workers. `hinted` is the run's
  /// pages-already-hinted set: each page is enqueued at most once per
  /// search, so steady frontiers don't re-queue the same ids every
  /// iteration. Under a BatchContext the set is batch-wide, so the
  /// members' merged frontier reaches the prefetcher once per page per
  /// batch. Advisory; never fails.
  void PrefetchFrontier(const std::vector<graph::NodeId>& frontier,
                        std::unordered_set<storage::PageId>* hinted);

  graph::RelationalGraphStore* store_;
  storage::BufferPool* pool_;
  DbSearchOptions options_;
  std::shared_ptr<const Estimator> landmark_estimator_;  ///< Version 4
  std::shared_ptr<const OverlayIndex> overlay_;          ///< Version 5
};

}  // namespace atis::core
