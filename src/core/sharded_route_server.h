// Sharded route serving over a Hilbert-range partitioned store.
//
// RouteServer scales the single-store engine across worker replicas; it
// cannot serve a continent map because every replica is one
// RelationalGraphStore (capped at 32767 nodes). ShardedRouteServer is the
// continent-scale executor: it serves a PartitionedGraphStore
// (graph/partitioned_store.h) through worker *groups* with partition
// affinity. A query is routed to the group owning its source partition,
// so a group's workers keep touching the same partition's blocks — the
// shared BufferPool sees the same locality the Hilbert layout created —
// while cross-partition queries are stitched exactly through the
// partition-boundary overlay (three-phase: source partition, in-memory
// overlay, target partition).
//
// The store is immutable while serving, so unlike RouteServer there are
// no per-worker replicas: StitchedDistance and GlobalDijkstra keep all
// working state on the query's own stack, and any number of workers can
// read the store concurrently. Per-query block I/O is still accounted
// exactly via IoMeter::ScopedThreadCounters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/partitioned_store.h"
#include "storage/io_meter.h"
#include "util/status.h"

namespace atis::obs {
class Counter;
}  // namespace atis::obs

namespace atis::core {

class ShardedRouteServer {
 public:
  /// How queries are answered. kStitched is the serving path; kGlobal
  /// runs the flat reference Dijkstra over the same store — the
  /// unpartitioned baseline stitched serving is benchmarked against.
  enum class Mode { kStitched, kGlobalDijkstra };

  struct Options {
    /// Worker threads across all groups. Clamped to >= 1.
    size_t num_workers = 4;
    /// Worker groups; 0 = one per partition, capped at num_workers.
    size_t num_groups = 0;
    /// Route a query to the group owning its source partition (groups
    /// cover partitions round-robin). When off, queries are spread
    /// round-robin regardless of partition — the locality-blind control.
    bool partition_affinity = true;
    Mode mode = Mode::kStitched;
  };

  struct Query {
    graph::NodeId source = 0;
    graph::NodeId destination = 0;
  };

  struct Response {
    size_t query_index = 0;
    Status status;               ///< non-OK when the query failed
    bool found = false;          ///< a route exists (valid iff status ok)
    double cost = 0.0;
    storage::IoCounters io;      ///< exact block I/O of this query
    double latency_seconds = 0.0;
    int group = -1;              ///< the worker group that served it
    bool cross_partition = false;
    graph::PartitionedGraphStore::QueryStats stats;
  };

  /// Starts the worker groups over `store` (not owned; must outlive the
  /// server and stay immutable while serving).
  ShardedRouteServer(const graph::PartitionedGraphStore* store,
                     Options options);

  ShardedRouteServer(const ShardedRouteServer&) = delete;
  ShardedRouteServer& operator=(const ShardedRouteServer&) = delete;

  /// Graceful shutdown: running queries finish, workers join.
  ~ShardedRouteServer();

  /// Runs the batch across the groups and blocks until every query has an
  /// answer; responses align positionally with `queries`. A failed query
  /// gets a non-OK per-response status — the batch itself still succeeds.
  /// Safe to call from multiple dispatcher threads.
  Result<std::vector<Response>> ServeBatch(
      const std::vector<Query>& queries);

  size_t num_groups() const { return groups_.size(); }
  size_t num_workers() const { return num_workers_; }

  /// Queries served since construction (relaxed).
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  /// One ServeBatch invocation's completion state.
  struct Call {
    size_t remaining = 0;  // guarded by done_mu_
  };
  struct WorkItem {
    const Query* query = nullptr;
    std::vector<Response>* out = nullptr;
    size_t index = 0;
    Call* call = nullptr;
  };
  /// One worker group: its own queue so affinity routing never contends
  /// with other groups' dispatch.
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> pending;  // guarded by mu
    std::vector<std::thread> workers;
  };

  void WorkerLoop(size_t group_id);
  Response RunOne(size_t group_id, const WorkItem& item);
  /// Group a query is routed to (source partition under affinity).
  size_t GroupOf(const Query& q);

  const graph::PartitionedGraphStore* store_;
  Options options_;
  size_t num_workers_ = 0;
  std::vector<std::unique_ptr<Group>> groups_;
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<bool> stop_{false};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // atis_partition_* metric series, resolved once at construction.
  obs::Counter* queries_metric_ = nullptr;
  obs::Counter* cross_metric_ = nullptr;
  obs::Counter* settled_store_metric_ = nullptr;
  obs::Counter* settled_overlay_metric_ = nullptr;
};

}  // namespace atis::core
