// Common result and statistics types for all path-computation algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "storage/io_meter.h"

namespace atis::core {

/// Which algorithm produced a result (for reporting).
enum class Algorithm {
  kIterative,  ///< breadth-first / transitive-closure representative
  kDijkstra,   ///< partial-transitive-closure representative
  kAStar,      ///< estimator-based single-pair representative
};

std::string_view AlgorithmName(Algorithm a);

/// Duplicate management policy for the frontier set (Section 4): the paper
/// prefers avoidance; the alternatives are kept for the ablation study.
enum class DuplicatePolicy {
  kAvoid,      ///< check membership before insert (paper's choice)
  kEliminate,  ///< insert, then purge duplicates of the same node
  kAllow,      ///< insert blindly; stale entries cause redundant iterations
};

std::string_view DuplicatePolicyName(DuplicatePolicy p);

struct SearchStats {
  /// Algorithm iterations under the paper's counting rules: frontier
  /// *rounds* for Iterative; node *expansions* (excluding the terminating
  /// selection of the destination) for Dijkstra and A*.
  uint64_t iterations = 0;
  uint64_t nodes_expanded = 0;   ///< nodes moved current->closed
  uint64_t nodes_generated = 0;  ///< successor relaxations attempted
  uint64_t nodes_improved = 0;   ///< relaxations that lowered a path cost
  uint64_t reopenings = 0;       ///< closed nodes moved back to open
  uint64_t frontier_peak = 0;

  /// Block-I/O work (database-resident runs only; zero for in-memory).
  storage::IoCounters io;
  /// io converted to paper cost units (database-resident runs only).
  double cost_units = 0.0;

  /// Per-statement-kind decomposition of `io`, mirroring the cost-model
  /// steps of Tables 2 and 3 (database-resident runs only). The sum of
  /// all parts equals `io`.
  struct IoBreakdown {
    storage::IoCounters init;        ///< C1-C4: reset/populate R, seed s
    storage::IoCounters selection;   ///< C5: scan for the minimum-f node
    storage::IoCounters marking;     ///< C6/C9: status REPLACE of u
    storage::IoCounters adjacency;   ///< C7: fetch u.adjacencyList from S
    storage::IoCounters relaxation;  ///< C8: probe + update neighbours
    storage::IoCounters cleanup;     ///< temp-relation drops, reconstruction
  };
  IoBreakdown breakdown;
};

struct PathResult {
  bool found = false;
  double cost = 0.0;
  /// Node sequence source..destination (empty when !found).
  std::vector<graph::NodeId> path;
  /// False when the configuration cannot guarantee optimality (e.g. A*
  /// with an estimator that may overestimate on this graph).
  bool optimality_guaranteed = true;
  SearchStats stats;
};

}  // namespace atis::core
