#include "core/update_log.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/crc32.h"

namespace atis::core {

namespace {

constexpr char kHeaderMagic[8] = {'A', 'T', 'I', 'S', 'W', '1', '\n', '\0'};
constexpr uint32_t kFrameMagic = 0x31574141u;  // "AAW1"
constexpr size_t kRecordBytes = 4 + 4 + 8;
constexpr size_t kFrameOverhead = 4 + 8 + 4 + 4;  // magic+seq+count+crc
/// Sanity bound on a frame's record count: anything larger is a corrupt
/// length field, not a plausible batch.
constexpr uint32_t kMaxRecordsPerFrame = 1u << 24;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::string EncodeFrame(std::span<const EdgeCostUpdate> updates,
                        uint64_t seq) {
  std::string frame;
  frame.reserve(kFrameOverhead + updates.size() * kRecordBytes);
  PutU32(&frame, kFrameMagic);
  PutU64(&frame, seq);
  PutU32(&frame, static_cast<uint32_t>(updates.size()));
  for (const EdgeCostUpdate& u : updates) {
    PutU32(&frame, static_cast<uint32_t>(u.u));
    PutU32(&frame, static_cast<uint32_t>(u.v));
    uint64_t bits;
    std::memcpy(&bits, &u.cost, sizeof bits);
    PutU64(&frame, bits);
  }
  // Checksum everything after the frame magic: seq, count, records.
  const uint32_t crc = Crc32(frame.data() + 4, frame.size() - 4);
  PutU32(&frame, crc);
  return frame;
}

struct Scan {
  UpdateLog::ReplayStats stats;
  Status status = Status::OK();  // non-OK = structural corruption
};

/// Walks `data` frame by frame, invoking `apply` (may be null) for every
/// committed frame with seq > after_seq. Stops at the first invalid
/// frame (torn tail); a bad header is corruption, not a tear.
Scan ScanLog(const std::string& data, uint64_t after_seq,
             const UpdateLog::ReplayFn& apply) {
  Scan out;
  if (data.size() < sizeof kHeaderMagic ||
      std::memcmp(data.data(), kHeaderMagic, sizeof kHeaderMagic) != 0) {
    out.status = Status::Corruption("not an ATISW1 update log");
    return out;
  }
  size_t at = sizeof kHeaderMagic;
  out.stats.valid_bytes = at;
  std::vector<EdgeCostUpdate> batch;
  while (at < data.size()) {
    if (data.size() - at < kFrameOverhead) break;  // partial frame header
    const char* p = data.data() + at;
    if (GetU32(p) != kFrameMagic) break;
    const uint64_t seq = GetU64(p + 4);
    const uint32_t count = GetU32(p + 12);
    if (count > kMaxRecordsPerFrame) break;
    const size_t body = static_cast<size_t>(count) * kRecordBytes;
    if (data.size() - at < kFrameOverhead + body) break;  // torn records
    const uint32_t stored_crc = GetU32(p + 16 + body);
    if (Crc32(p + 4, 12 + body) != stored_crc) break;  // torn/corrupt
    if (apply != nullptr && seq > after_seq) {
      batch.clear();
      batch.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const char* r = p + 16 + static_cast<size_t>(i) * kRecordBytes;
        EdgeCostUpdate u;
        u.u = static_cast<graph::NodeId>(GetU32(r));
        u.v = static_cast<graph::NodeId>(GetU32(r + 4));
        uint64_t bits = GetU64(r + 8);
        std::memcpy(&u.cost, &bits, sizeof bits);
        batch.push_back(u);
      }
      if (Status st = apply(seq, batch); !st.ok()) {
        out.status = std::move(st);
        return out;
      }
    }
    ++out.stats.batches;
    out.stats.records += count;
    out.stats.last_seq = seq;
    at += kFrameOverhead + body;
    out.stats.valid_bytes = at;
  }
  out.stats.torn_tail = out.stats.valid_bytes < data.size();
  return out;
}

Result<std::string> ReadWhole(const std::string& path, bool* exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *exists = false;
    return std::string();
  }
  *exists = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Unavailable("cannot read " + path);
  return data;
}

}  // namespace

Result<UpdateLog::ReplayStats> UpdateLog::Replay(const std::string& path,
                                                 storage::DiskManager* disk,
                                                 uint64_t after_seq,
                                                 const ReplayFn& apply) {
  bool exists = false;
  ATIS_ASSIGN_OR_RETURN(const std::string data, ReadWhole(path, &exists));
  if (!exists) return ReplayStats{};  // first boot: nothing to replay
  if (disk != nullptr && !data.empty()) {
    disk->meter().RecordRead((data.size() + storage::DurableFile::kBlockBytes -
                              1) /
                             storage::DurableFile::kBlockBytes);
  }
  Scan scan = ScanLog(data, after_seq, apply);
  ATIS_RETURN_NOT_OK(scan.status);
  return scan.stats;
}

Result<std::unique_ptr<UpdateLog>> UpdateLog::Open(Options options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("UpdateLog needs a path");
  }
  bool exists = false;
  ATIS_ASSIGN_OR_RETURN(const std::string data,
                        ReadWhole(options.path, &exists));
  ReplayStats stats;
  if (exists && !data.empty()) {
    Scan scan = ScanLog(data, /*after_seq=*/~uint64_t{0}, nullptr);
    ATIS_RETURN_NOT_OK(scan.status);
    stats = scan.stats;
  }
  ATIS_ASSIGN_OR_RETURN(
      auto file, storage::DurableFile::Open(options.path, options.disk));
  if (!exists || data.empty()) {
    ATIS_RETURN_NOT_OK(file->TruncateTo(0));
    ATIS_RETURN_NOT_OK(file->Append(kHeaderMagic, sizeof kHeaderMagic));
    ATIS_RETURN_NOT_OK(file->Sync());
    stats = ReplayStats{};
    stats.valid_bytes = sizeof kHeaderMagic;
  } else if (stats.torn_tail) {
    // Discard the torn tail so the next frame starts on a clean boundary.
    ATIS_RETURN_NOT_OK(file->TruncateTo(stats.valid_bytes));
  }
  return std::unique_ptr<UpdateLog>(
      new UpdateLog(std::move(options), std::move(file), stats));
}

Status UpdateLog::Append(std::span<const EdgeCostUpdate> updates,
                         uint64_t seq) {
  ATIS_RETURN_NOT_OK(poisoned_);
  if (seq <= last_seq_) {
    return Status::InvalidArgument("WAL sequence numbers must increase");
  }
  const std::string frame = EncodeFrame(updates, seq);
  ATIS_RETURN_NOT_OK(file_->Append(frame.data(), frame.size()));
  if (options_.sync_on_commit) {
    if (Status st = file_->Sync(); !st.ok()) {
      // An unsynced frame is not committed: take it back so a later
      // successful append is not preceded by a maybe-durable ghost.
      if (Status tr = file_->TruncateTo(file_->size() - frame.size());
          !tr.ok()) {
        // The ghost could not be taken back: a CRC-valid frame with this
        // seq may still be in the file. If a retry reused the seq with
        // different contents, replay would apply the never-acknowledged
        // ghost first — so the log refuses every further append instead.
        // (Reopening is safe: the scan counts the surviving ghost as
        // committed and sequences continue past it, never through it.)
        poisoned_ = Status::Unavailable(
            "update log poisoned: unsynced frame could not be rolled "
            "back (" + tr.ToString() + ")");
      }
      return st;
    }
    ++sync_commits_;
  }
  last_seq_ = seq;
  ++appended_batches_;
  appended_records_ += updates.size();
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status UpdateLog::Reset() {
  ATIS_RETURN_NOT_OK(file_->TruncateTo(sizeof kHeaderMagic));
  ATIS_RETURN_NOT_OK(file_->Sync());
  return Status::OK();
}

}  // namespace atis::core
