#include "core/route_service.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

namespace atis::core {

using graph::Graph;
using graph::NodeId;

RouteEvaluation EvaluateRoute(const Graph& g,
                              const std::vector<NodeId>& path) {
  RouteEvaluation eval;
  if (path.empty()) return eval;
  if (path.size() == 1) {
    eval.valid = g.HasNode(path.front());
    eval.directness = 1.0;
    return eval;
  }
  eval.valid = true;
  double cumulative = 0.0;
  double polyline = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId u = path[i];
    const NodeId v = path[i + 1];
    if (!g.HasNode(u) || !g.HasNode(v)) {
      eval.valid = false;
      break;
    }
    const auto cost = g.EdgeCost(u, v);
    if (!cost.ok()) {
      eval.valid = false;
      break;
    }
    cumulative += *cost;
    polyline += g.EuclideanDistance(u, v);
    SegmentReport seg;
    seg.from = u;
    seg.to = v;
    seg.cost = *cost;
    seg.cumulative_cost = cumulative;
    const graph::Point& a = g.point(u);
    const graph::Point& b = g.point(v);
    seg.heading_deg =
        std::atan2(b.y - a.y, b.x - a.x) * 180.0 / std::numbers::pi;
    eval.segments.push_back(seg);
  }
  eval.total_cost = cumulative;
  eval.num_segments = eval.segments.size();
  if (g.HasNode(path.front()) && g.HasNode(path.back())) {
    eval.straight_line_distance =
        g.EuclideanDistance(path.front(), path.back());
    eval.directness = eval.straight_line_distance > 0.0
                          ? polyline / eval.straight_line_distance
                          : 1.0;
  }
  return eval;
}

std::string RenderDirections(const Graph& g,
                             const std::vector<NodeId>& path) {
  const RouteEvaluation eval = EvaluateRoute(g, path);
  std::ostringstream out;
  if (!eval.valid || eval.segments.empty()) {
    out << "(no drivable route)\n";
    return out.str();
  }
  out << "Depart node " << path.front() << "\n";
  double leg_cost = eval.segments.front().cost;
  for (size_t i = 1; i < eval.segments.size(); ++i) {
    double turn = eval.segments[i].heading_deg -
                  eval.segments[i - 1].heading_deg;
    while (turn > 180.0) turn -= 360.0;
    while (turn < -180.0) turn += 360.0;
    const char* action = nullptr;
    if (std::abs(turn) < 30.0) {
      action = nullptr;  // continue straight: merge into the current leg
    } else if (turn >= 30.0 && turn < 150.0) {
      action = "Turn left";
    } else if (turn <= -30.0 && turn > -150.0) {
      action = "Turn right";
    } else {
      action = "Make a U-turn";
    }
    if (action == nullptr) {
      leg_cost += eval.segments[i].cost;
      continue;
    }
    out << "  drive " << leg_cost << " cost units\n";
    out << action << " at node " << eval.segments[i].from << "\n";
    leg_cost = eval.segments[i].cost;
  }
  out << "  drive " << leg_cost << " cost units\n";
  out << "Arrive at node " << path.back() << " (total cost "
      << eval.total_cost << ", " << eval.num_segments << " segments)\n";
  return out.str();
}

std::string RenderAsciiMap(const Graph& g, const std::vector<NodeId>& path,
                           int width, int height) {
  width = std::max(width, 2);
  height = std::max(height, 2);
  double min_x = 0.0;
  double max_x = 1.0;
  double min_y = 0.0;
  double max_y = 1.0;
  if (g.num_nodes() > 0) {
    min_x = max_x = g.point(0).x;
    min_y = max_y = g.point(0).y;
    for (NodeId u = 1; u < static_cast<NodeId>(g.num_nodes()); ++u) {
      min_x = std::min(min_x, g.point(u).x);
      max_x = std::max(max_x, g.point(u).x);
      min_y = std::min(min_y, g.point(u).y);
      max_y = std::max(max_y, g.point(u).y);
    }
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  std::vector<std::string> canvas(static_cast<size_t>(height),
                                  std::string(static_cast<size_t>(width),
                                              '.'));
  auto plot = [&](const graph::Point& p, char ch) {
    const int col = static_cast<int>(
        std::lround((p.x - min_x) / span_x * (width - 1)));
    const int row = static_cast<int>(
        std::lround((p.y - min_y) / span_y * (height - 1)));
    // y grows upward on the map; rows grow downward on screen.
    canvas[static_cast<size_t>(height - 1 - row)]
          [static_cast<size_t>(col)] = ch;
  };
  for (const NodeId u : path) {
    if (g.HasNode(u)) plot(g.point(u), '*');
  }
  if (!path.empty()) {
    if (g.HasNode(path.front())) plot(g.point(path.front()), 'S');
    if (g.HasNode(path.back())) plot(g.point(path.back()), 'D');
  }
  std::ostringstream out;
  for (const std::string& line : canvas) out << line << "\n";
  return out.str();
}

}  // namespace atis::core
