#include "core/route_server.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <utility>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/memory_search.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/slo.h"
#include "graph/spatial_layout.h"
#include "obs/trace.h"
#include "obs/trace_ring.h"

namespace atis::core {

const char* ServedViaName(ServedVia via) {
  switch (via) {
    case ServedVia::kEngine:
      return "engine";
    case ServedVia::kCache:
      return "cache";
    case ServedVia::kStaleCache:
      return "stale-cache";
    case ServedVia::kSnapshot:
      return "snapshot";
    case ServedVia::kCoalesced:
      return "coalesced";
    case ServedVia::kNone:
      return "none";
  }
  return "?";
}

RouteServer::RouteServer(const graph::Graph& g)
    : RouteServer(g, Options()) {}

RouteServer::RouteServer(const graph::Graph& g, Options options) {
  if (options.num_workers == 0) options.num_workers = 1;
  options_ = options;
  const size_t frames = options.pool_frames != 0
                            ? options.pool_frames
                            : 128 * options.num_workers;
  const size_t shards = options.pool_shards != 0
                            ? options.pool_shards
                            : std::max<size_t>(4, 2 * options.num_workers);
  disk_.SetLatencyModel(options.disk_latency);
  pool_ = std::make_unique<storage::BufferPool>(&disk_, frames, shards);

  DbSearchOptions search = options.search;
  search.statement_at_a_time = false;  // unsafe with concurrent pinners
  search.prefetch_depth = options.prefetch_depth;

  // Crash recovery: the base metric every replica loads is the caller's
  // graph, corrected by the newest checkpoint plus every committed WAL
  // frame past it — exactly the last state an updater was acknowledged.
  graph::Graph base = g;
  if (!options.wal.dir.empty()) {
    if (init_status_ = RecoverFromWal(&base); !init_status_.ok()) return;
  }

  // Load one store replica per worker (sequentially; the workers are not
  // running yet). The first failure wins and the server stays inert.
  const graph::RelationalGraphStore::LoadOptions load_options{
      options.layout};
  for (size_t w = 0; w < options.num_workers; ++w) {
    auto store = std::make_unique<graph::RelationalGraphStore>(pool_.get());
    if (Status st = store->Load(base, load_options); !st.ok()) {
      init_status_ = std::move(st);
      return;
    }
    engines_.push_back(std::make_unique<DbSearchEngine>(
        store.get(), pool_.get(), search));
    stores_.push_back(std::move(store));
  }
  if (options.overlay_cell_order > 0) {
    // The writer's private replica: overlay re-customization reads
    // post-update adjacency from here without touching (or waiting for)
    // any serving replica.
    updater_store_ =
        std::make_unique<graph::RelationalGraphStore>(pool_.get());
    if (Status st = updater_store_->Load(base, load_options); !st.ok()) {
      init_status_ = std::move(st);
      return;
    }
  }

  std::shared_ptr<const Estimator> estimator_init;
  std::shared_ptr<const OverlayIndex> overlay_init;

  if (options.num_landmarks > 0) {
    // One ALT table serves every worker: select on the float-rounded
    // metric (the one the engines accumulate), persist/load it through
    // replica 0's storage path for metered accounting, and share the
    // immutable result.
    init_status_ = [&]() -> Status {
      LandmarkOptions lm;
      lm.num_landmarks = options.num_landmarks;
      ATIS_ASSIGN_OR_RETURN(LandmarkSet selected,
                            SelectLandmarks(WithStoredEdgeCosts(base), lm));
      ATIS_ASSIGN_OR_RETURN(auto table,
                            PersistAndLoadLandmarks(selected,
                                                    stores_.front().get()));
      landmark_set_ = table;  // re-validation reuses these landmark ids
      estimator_init = MakeLandmarkEstimator(std::move(table));
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableLandmarks(estimator_init));
      }
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.overlay_cell_order > 0) {
    // Topology once (persisted through replica 0's metered storage path),
    // then per-metric customization parallelised across the replicas —
    // each store serves a disjoint cell stripe, so the shared pool sees
    // only read traffic. Every engine serves the same immutable index.
    init_status_ = [&]() -> Status {
      ATIS_ASSIGN_OR_RETURN(
          OverlayTopology built,
          OverlayTopology::Build(
              base, OverlayOptions{options.overlay_cell_order}));
      ATIS_ASSIGN_OR_RETURN(
          auto topology,
          PersistAndLoadOverlayTopology(built, stores_.front().get(),
                                        base));
      std::vector<graph::RelationalGraphStore*> replicas;
      replicas.reserve(stores_.size());
      for (auto& store : stores_) replicas.push_back(store.get());
      ATIS_ASSIGN_OR_RETURN(
          auto customization,
          CustomizeOverlay(*topology, replicas, /*metric_version=*/1));
      auto index = std::make_shared<const OverlayIndex>(
          OverlayIndex{std::move(topology), std::move(customization)});
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableOverlay(index));
      }
      overlay_init = std::move(index);
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.enable_cache) {
    cache_ = std::make_unique<RouteCache>(options.cache);
    auto& reg = obs::MetricsRegistry::Default();
    cache_hits_ = &reg.GetCounter("atis_route_cache_hits_total",
                                  "Route queries answered from the cache");
    cache_misses_ = &reg.GetCounter(
        "atis_route_cache_misses_total",
        "Route queries that missed the cache and ran a search");
    cache_stale_ = &reg.GetCounter(
        "atis_route_cache_stale_evictions_total",
        "Cached routes evicted because a traffic update bumped the epoch");
    cache_region_invalidated_ = &reg.GetCounter(
        "atis_route_cache_region_invalidated_total",
        "Cached routes invalidated by region-scoped (overlay-cell) "
        "traffic updates");
  }

  {
    auto& reg = obs::MetricsRegistry::Default();
    deadline_exceeded_ = &reg.GetCounter(
        "atis_server_deadline_exceeded_total",
        "Route queries whose search ran past its deadline");
    degraded_stale_ = &reg.GetCounter(
        "atis_server_degraded_stale_total",
        "Degraded answers served from a stale cache entry");
    degraded_snapshot_ = &reg.GetCounter(
        "atis_server_degraded_snapshot_total",
        "Degraded answers computed on the in-memory graph snapshot");
    breaker_opened_ = &reg.GetCounter(
        "atis_server_breaker_open_transitions_total",
        "Replica circuit breakers opened by consecutive storage faults");
    breaker_rejections_ = &reg.GetCounter(
        "atis_server_breaker_rejections_total",
        "Route queries refused a quarantined replica");
    admission_shed_ = &reg.GetCounter(
        "atis_server_admission_shed_total",
        "Route queries shed by admission control (kResourceExhausted)");
    batch_batches_ = &reg.GetCounter(
        "atis_batch_batches_total",
        "Query batches executed through a shared BatchContext");
    batch_members_ = &reg.GetCounter(
        "atis_batch_members_total",
        "Route queries executed as members of a batch");
    batch_adjacency_fetches_ = &reg.GetCounter(
        "atis_batch_adjacency_fetches_total",
        "Metered adjacency fetches performed on behalf of a batch");
    batch_shared_hits_ = &reg.GetCounter(
        "atis_batch_shared_adjacency_hits_total",
        "Adjacency lookups served from a batch's shared scan cache "
        "(block reads a serial execution would have re-issued)");
    batch_coalesced_ = &reg.GetCounter(
        "atis_batch_coalesced_total",
        "Route queries answered by singleflight coalescing onto an "
        "identical query in the same batch");
    wal_appends_metric_ = &reg.GetCounter(
        "atis_wal_appends_total",
        "Update batches committed (appended and fsync'd) to the WAL");
    wal_records_metric_ = &reg.GetCounter(
        "atis_wal_records_total",
        "Edge-cost updates committed to the WAL across all batches");
    wal_bytes_metric_ = &reg.GetCounter(
        "atis_wal_bytes_written_total",
        "Bytes of committed WAL frames (header excluded)");
    wal_append_failures_metric_ = &reg.GetCounter(
        "atis_wal_append_failures_total",
        "Update batches refused because their WAL commit failed "
        "(nothing was applied)");
    wal_checkpoints_metric_ = &reg.GetCounter(
        "atis_wal_checkpoints_total",
        "Metric checkpoints written (each resets the WAL)");
    snapshot_published_metric_ = &reg.GetCounter(
        "atis_snapshot_published_total",
        "Metric versions published by atomic snapshot swap");
    snapshot_catchups_metric_ = &reg.GetCounter(
        "atis_snapshot_worker_catchups_total",
        "Worker replicas caught up to a newer metric version at batch "
        "claim");
    snapshot_revalidations_metric_ = &reg.GetCounter(
        "atis_snapshot_landmark_revalidations_total",
        "Landmark tables recomputed because a batch lowered an edge cost");
    if (!options.wal.dir.empty()) {
      // Recovery happened before the registry series existed; publish it
      // now so a restarted server's replay is visible process-wide.
      reg.GetCounter("atis_wal_replayed_batches_total",
                     "Committed WAL frames replayed during recovery")
          .Increment(recovery_.batches);
      reg.GetCounter("atis_wal_replayed_records_total",
                     "Edge-cost updates replayed during recovery")
          .Increment(recovery_.records);
      if (recovery_.torn_tail) {
        reg.GetCounter("atis_wal_torn_tail_truncations_total",
                       "Torn (uncommitted) WAL tails truncated at open")
            .Increment();
      }
    }
  }

  // Observability: trace sampling, slow-query log, SLO windows. A broken
  // obs configuration fails construction the same way a broken replica
  // does — a server you cannot observe as configured should not serve.
  started_ = std::chrono::steady_clock::now();
  if (options.obs.sample_every > 0) {
    if (options.obs.trace_dir.empty()) {
      init_status_ = Status::InvalidArgument(
          "RouteServer: obs.sample_every > 0 requires obs.trace_dir");
      return;
    }
    obs::TraceRing::Options ring;
    ring.directory = options.obs.trace_dir;
    ring.capacity = options.obs.trace_ring_capacity;
    auto opened = obs::TraceRing::Open(std::move(ring));
    if (!opened.ok()) {
      init_status_ = opened.status();
      return;
    }
    trace_ring_ = std::move(opened).value();
    sampler_ = std::make_unique<obs::TraceSampler>(options.obs.sample_every);
    traces_sampled_ = &obs::MetricsRegistry::Default().GetCounter(
        "atis_server_traces_sampled_total",
        "Query span trees persisted to the trace ring (head-sampled or "
        "forced by a slow/degraded/errored query)");
  }
  if (options.obs.slow_query_ms > 0.0) {
    if (options.obs.slow_query_log_path.empty()) {
      init_status_ = Status::InvalidArgument(
          "RouteServer: obs.slow_query_ms > 0 requires "
          "obs.slow_query_log_path");
      return;
    }
    obs::SlowQueryLog::Options log;
    log.path = options.obs.slow_query_log_path;
    log.threshold_ms = options.obs.slow_query_ms;
    log.max_bytes = options.obs.slow_query_log_max_bytes;
    auto opened = obs::SlowQueryLog::Open(std::move(log));
    if (!opened.ok()) {
      init_status_ = opened.status();
      return;
    }
    slow_log_ = std::move(opened).value();
    slow_queries_ = &obs::MetricsRegistry::Default().GetCounter(
        "atis_server_slow_queries_total",
        "Queries at or over the slow-query threshold");
  }
  if (options.obs.enable_slo) {
    obs::SloWindows::Options slo;
    slo.availability_target = options.obs.availability_target;
    slo_ = std::make_unique<obs::SloWindows>(std::move(slo));
  }

  for (size_t w = 0; w < options.num_workers; ++w) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options.breaker));
  }
  // Version 1: the initial metric, on the store's float-rounded costs (a
  // snapshot route costs what the engine would have reported). Every
  // worker replica starts caught up to it.
  write_graph_ = WithStoredEdgeCosts(base);
  {
    auto head = std::make_shared<MetricState>();
    head->version = 1;
    head->snapshot = std::make_shared<const graph::Graph>(write_graph_);
    head->overlay = overlay_init;
    head->estimator = estimator_init;
    head_ = std::move(head);
  }
  published_version_.store(1, std::memory_order_release);
  obs::MetricsRegistry::Default()
      .GetGauge("atis_snapshot_version",
                "Currently published metric version (1 at construction)")
      .Set(1.0);
  replica_version_.assign(options.num_workers, 1);
  worker_overlay_.assign(options.num_workers, overlay_init);
  worker_estimator_.assign(options.num_workers, estimator_init);
  if (options.max_batch > 1) {
    regions_ = std::make_unique<RegionIndex>(*head_->snapshot,
                                             options.batch_region_order);
  }

  // Resilience knobs go live only after every replica (and the landmark
  // table) loaded cleanly — construction itself never draws a fault.
  pool_->SetRetryPolicy(options.retry);
  disk_.SetFaultProfile(options.fault_profile);

  if (options.prefetch_depth > 0) {
    pool_->StartPrefetchWorkers(
        options.prefetch_workers != 0 ? options.prefetch_workers : 2);
  }

  workers_.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

RouteServer::~RouteServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<RouteResponse>> RouteServer::ServeBatch(
    const std::vector<RouteQuery>& queries) {
  ATIS_RETURN_NOT_OK(init_status_);
  std::vector<RouteResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Admission control: a bounded server accepts one batch's worth of work
  // per worker plus a fixed queue; the rest is shed immediately rather
  // than queued behind a saturated pool (load shedding beats unbounded
  // latency under overload).
  size_t admitted = queries.size();
  if (options_.max_queue_depth > 0) {
    admitted = std::min(queries.size(),
                        engines_.size() + options_.max_queue_depth);
  }
  for (size_t i = admitted; i < queries.size(); ++i) {
    responses[i].query_index = i;
    responses[i].served_via = ServedVia::kNone;
    responses[i].status = Status::ResourceExhausted(
        "route server saturated: query shed by admission control");
    admission_shed_->Increment();
    // Shed queries count against availability: the traveller asked and got
    // nothing, however deliberate the refusal.
    if (slo_) {
      slo_->Record({.latency_seconds = 0.0, .ok = false, .degraded = false,
                    .shed = true});
    }
  }

  if (admitted == 0) return responses;

  // Hand the admitted prefix to the shared queue and block until every
  // query of THIS call has an answer. The call's completion state lives on
  // this stack frame; workers hold pointers to it only while the frame is
  // pinned here.
  ServeCall call;
  const auto enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    call.remaining = admitted;
    for (size_t i = 0; i < admitted; ++i) {
      WorkItem item;
      item.query = &queries[i];
      item.out = &responses;
      item.index = i;
      item.region =
          regions_ != nullptr ? regions_->RegionOf(queries[i].source) : 0;
      item.enqueued = enqueued;
      item.call = &call;
      pending_.push_back(item);
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return call.remaining == 0; });
  }
  return responses;
}

bool RouteServer::ClaimBatch(std::unique_lock<std::mutex>& lock,
                             std::vector<WorkItem>* claimed,
                             uint64_t* batch_id) {
  work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
  if (stop_) return false;

  // FIFO seed, then every pending query sharing its region, newest last —
  // region grouping reorders across dispatch calls, which is exactly the
  // locality win, while the FIFO seed bounds any query's queue delay.
  claimed->push_back(pending_.front());
  pending_.pop_front();
  const uint64_t region = claimed->front().region;
  const size_t max_batch = std::max<size_t>(1, options_.max_batch);
  auto claim_matching = [&] {
    for (auto it = pending_.begin();
         it != pending_.end() && claimed->size() < max_batch;) {
      if (it->region == region) {
        claimed->push_back(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  };
  claim_matching();

  // Underfull batch: optionally hold it open for late same-region
  // arrivals, bounded by the seed's enqueue time plus the window. Other
  // workers keep draining other regions meanwhile.
  if (claimed->size() < max_batch && options_.batch_window_us > 0) {
    const auto hold_until =
        claimed->front().enqueued +
        std::chrono::microseconds(options_.batch_window_us);
    while (claimed->size() < max_batch && !stop_) {
      if (work_cv_.wait_until(lock, hold_until) ==
          std::cv_status::timeout) {
        claim_matching();
        break;
      }
      claim_matching();
    }
  }

  *batch_id = max_batch > 1 ? ++next_batch_id_ : 0;
  return true;
}

void RouteServer::WorkerLoop(size_t worker_id) {
  // Per-worker series are resolved once; the references stay valid for the
  // registry's lifetime.
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"worker", std::to_string(worker_id)}};
  obs::Counter& served =
      reg.GetCounter("atis_server_queries_total",
                     "Route queries served by the worker pool", labels);
  obs::Counter& failed =
      reg.GetCounter("atis_server_query_failures_total",
                     "Route queries that returned an error", labels);
  obs::Histogram& latency = reg.GetHistogram(
      "atis_server_query_latency_seconds",
      "Per-query wall time inside a worker",
      obs::Histogram::LatencyBounds(), labels);

  while (true) {
    std::vector<WorkItem> claimed;
    uint64_t batch_id = 0;
    std::shared_ptr<const MetricState> pinned;
    std::vector<EdgeCostUpdate> todo;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!ClaimBatch(lock, &claimed, &batch_id)) return;
      // Pin the published metric for the whole batch, and collect the
      // dirty edges this replica is behind on — only up to the pinned
      // version, so the replica never runs ahead of what it reports.
      pinned = head_;
      const uint64_t have = replica_version_[worker_id];
      if (have < pinned->version) {
        for (const auto& [key, e] : dirty_edges_) {
          if (e.version > have && e.version <= pinned->version) {
            todo.push_back(
                {static_cast<graph::NodeId>(key >> 32),
                 static_cast<graph::NodeId>(key & 0xffffffffu), e.cost});
          }
        }
      }
    }

    // Catch the private replica up outside the lock. On failure the
    // replica stays behind (retried at the next claim) and this batch
    // serves exact-but-degraded answers from the pinned snapshot.
    Status replica_health = Status::OK();
    if (!todo.empty() || pinned->overlay != worker_overlay_[worker_id] ||
        pinned->estimator != worker_estimator_[worker_id]) {
      replica_health = CatchUpReplica(worker_id, *pinned, todo);
    }

    // Singleflight plan: the first occurrence of each (source,
    // destination, algorithm, version) key computes; duplicates copy.
    std::vector<CoalesceKey> keys;
    keys.reserve(claimed.size());
    for (const WorkItem& item : claimed) {
      keys.push_back(CoalesceKey{item.query->source,
                                 item.query->destination,
                                 item.query->algorithm,
                                 item.query->version});
    }
    const std::vector<size_t> leaders = PlanCoalescing(keys);

    // Execute the batch sequentially through one shared context. With
    // batching off (batch_id == 0) the context stays unused and the loop
    // degenerates to the serial one-query-at-a-time path.
    BatchContext ctx(batch_id);
    BatchContext* ctx_ptr = batch_id != 0 ? &ctx : nullptr;
    std::vector<RouteResponse> resps(claimed.size());
    for (size_t i = 0; i < claimed.size(); ++i) {
      // leaders[i] <= i, so a follower's leader has already run.
      resps[i] = leaders[i] == i
                     ? RunOne(worker_id, claimed[i].index,
                              *claimed[i].query, ctx_ptr, batch_id,
                              *pinned, replica_health)
                     : RunCoalesced(worker_id, claimed[i].index,
                                    *claimed[i].query, resps[leaders[i]],
                                    batch_id);
      served.Increment();
      if (!resps[i].status.ok()) failed.Increment();
      latency.Observe(resps[i].latency_seconds);
    }

    if (batch_id != 0) {
      batch_batches_->Increment();
      batch_members_->Increment(claimed.size());
      batch_adjacency_fetches_->Increment(ctx.stats().adjacency_fetches);
      batch_shared_hits_->Increment(ctx.stats().shared_adjacency_hits);
      batches_executed_.fetch_add(1, std::memory_order_relaxed);
      batch_members_executed_.fetch_add(claimed.size(),
                                        std::memory_order_relaxed);
      batch_fetches_.fetch_add(ctx.stats().adjacency_fetches,
                               std::memory_order_relaxed);
      batch_shared_.fetch_add(ctx.stats().shared_adjacency_hits,
                              std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < claimed.size(); ++i) {
        (*claimed[i].out)[claimed[i].index] = std::move(resps[i]);
        --claimed[i].call->remaining;
      }
    }
    done_cv_.notify_all();
  }
}

Status RouteServer::CatchUpReplica(size_t worker_id,
                                   const MetricState& pinned,
                                   std::span<const EdgeCostUpdate> todo) {
  // Applying latest-cost-per-edge is idempotent, so a partial failure
  // here is safe: replica_version_ only advances on full success, and the
  // next claim re-applies the whole remaining dirty set.
  for (const EdgeCostUpdate& e : todo) {
    ATIS_RETURN_NOT_OK(stores_[worker_id]->UpdateEdgeCost(e.u, e.v, e.cost));
  }
  if (pinned.overlay != worker_overlay_[worker_id]) {
    ATIS_RETURN_NOT_OK(engines_[worker_id]->EnableOverlay(pinned.overlay));
    worker_overlay_[worker_id] = pinned.overlay;
  }
  if (pinned.estimator != worker_estimator_[worker_id]) {
    ATIS_RETURN_NOT_OK(
        engines_[worker_id]->EnableLandmarks(pinned.estimator));
    worker_estimator_[worker_id] = pinned.estimator;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    replica_version_[worker_id] = pinned.version;
  }
  worker_catchups_.fetch_add(1, std::memory_order_relaxed);
  snapshot_catchups_metric_->Increment();
  return Status::OK();
}

RouteResponse RouteServer::RunCoalesced(size_t worker_id,
                                        size_t query_index,
                                        const RouteQuery& q,
                                        const RouteResponse& leader,
                                        uint64_t batch_id) {
  const auto started = std::chrono::steady_clock::now();
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);
  resp.batch_id = batch_id;
  resp.coalesced = true;
  // The leader's answer, whatever its provenance — including a failure:
  // an identical query asked at the same instant fails the same way.
  resp.status = leader.status;
  resp.result = leader.result;
  resp.degraded = leader.degraded;
  resp.degraded_cause = leader.degraded_cause;
  resp.metric_version = leader.metric_version;
  resp.served_via =
      leader.status.ok() ? ServedVia::kCoalesced : ServedVia::kNone;
  // No search ran and no cache lookup happened for this member: io stays
  // zero and cache hit/miss accounting belongs to the leader alone.
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  batch_coalesced_->Increment();
  batch_coalesced_served_.fetch_add(1, std::memory_order_relaxed);

  if (slow_log_ != nullptr) {
    obs::SlowQueryLog::Record rec;
    rec.source = q.source;
    rec.destination = q.destination;
    rec.algorithm = std::string(AlgorithmName(q.algorithm));
    rec.latency_ms = resp.latency_seconds * 1000.0;
    rec.blocks_read = 0;
    rec.cache_hit = false;
    rec.degraded = resp.degraded;
    rec.served_via = ServedViaName(resp.served_via);
    rec.worker_id = resp.worker_id;
    rec.batch_id = batch_id;
    rec.coalesced = true;
    if (!resp.status.ok()) rec.status = resp.status.ToString();
    slow_log_->MaybeRecord(rec,
                           /*force=*/resp.degraded || !resp.status.ok());
  }
  if (slo_) {
    slo_->Record({.latency_seconds = resp.latency_seconds,
                  .ok = resp.status.ok(),
                  .degraded = resp.degraded,
                  .shed = false});
  }
  return resp;
}

Status RouteServer::UpdateEdgeCost(graph::NodeId u, graph::NodeId v,
                                   double cost) {
  const EdgeCostUpdate one{u, v, cost};
  return ApplyUpdates({&one, 1});
}

Status RouteServer::ApplyUpdates(std::span<const EdgeCostUpdate> updates) {
  ATIS_RETURN_NOT_OK(init_status_);
  if (updates.empty()) return Status::OK();

  // Writers serialize among themselves; readers are never touched.
  std::lock_guard<std::mutex> writer(update_mu_);
  ATIS_RETURN_NOT_OK(write_path_status_);

  // Validate the whole batch against the writer's view before any
  // durable or in-memory effect: an invalid batch is refused whole.
  // Compare float-rounded costs (the metric searches actually see) so an
  // update that rounds to a no-op or pure increase is classified by its
  // served effect.
  bool any_decrease = false;
  for (const EdgeCostUpdate& e : updates) {
    if (!(e.cost >= 0.0)) {
      return Status::InvalidArgument("negative edge cost in update batch");
    }
    ATIS_ASSIGN_OR_RETURN(const double prior,
                          write_graph_.EdgeCost(e.u, e.v));
    if (static_cast<double>(static_cast<float>(e.cost)) < prior) {
      any_decrease = true;
    }
  }

  // Commit point: the batch is durable before anything serves it. A
  // failed commit applies nothing — the caller may retry and the served
  // metric is still exactly the last acknowledged state.
  const uint64_t seq = last_committed_seq_ + 1;
  if (wal_ != nullptr) {
    const uint64_t bytes_before = wal_->bytes_appended();
    if (Status st = wal_->Append(updates, seq); !st.ok()) {
      wal_append_failures_.fetch_add(1, std::memory_order_relaxed);
      wal_append_failures_metric_->Increment();
      return st;
    }
    wal_appends_metric_->Increment();
    wal_records_metric_->Increment(updates.size());
    wal_bytes_metric_->Increment(wal_->bytes_appended() - bytes_before);
  }
  last_committed_seq_ = seq;

  // Past the commit point every fallible step mutates writer state
  // (updater replica, write_graph_, overlay, landmarks). A failure
  // partway leaves that state half-applied with no batch in the dirty
  // set, and the NEXT successful publish would snapshot the half-applied
  // graph while worker replicas never catch up — served answers would
  // silently diverge from the published snapshot, overlay, and WAL. So a
  // post-commit build failure poisons the write path instead: readers
  // keep serving the last fully-published version (still internally
  // consistent), further updates are refused with the poison status, and
  // a restart replays the WAL into a consistent metric.
  if (Status st = PublishBatchLocked(updates, any_decrease); !st.ok()) {
    write_path_status_ = Status::Unavailable(
        "write path poisoned by a post-commit build failure: " +
        st.ToString());
    return st;
  }

  if (wal_ != nullptr && options_.wal.checkpoint_every > 0 &&
      ++batches_since_checkpoint_ >= options_.wal.checkpoint_every) {
    ATIS_RETURN_NOT_OK(WriteCheckpoint(seq));
    batches_since_checkpoint_ = 0;
  }
  return Status::OK();
}

Status RouteServer::PublishBatchLocked(
    std::span<const EdgeCostUpdate> updates, bool any_decrease) {
  // Build version N+1 off to the side: updater replica first (overlay
  // re-customization reads adjacency from it), then the writer's graph,
  // then one immutable snapshot copy.
  const uint64_t new_version =
      published_version_.load(std::memory_order_relaxed) + 1;
  for (const EdgeCostUpdate& e : updates) {
    if (updater_store_ != nullptr) {
      ATIS_RETURN_NOT_OK(updater_store_->UpdateEdgeCost(e.u, e.v, e.cost));
    }
    ATIS_RETURN_NOT_OK(
        write_graph_.SetEdgeCost(e.u, e.v, static_cast<float>(e.cost)));
  }
  auto next = std::make_shared<MetricState>();
  next->version = new_version;
  next->snapshot = std::make_shared<const graph::Graph>(write_graph_);

  std::shared_ptr<const MetricState> prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prev = head_;
  }
  next->estimator = prev->estimator;
  if (prev->overlay != nullptr) {
    // One re-customization for the whole batch, deduplicated by cell.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    edges.reserve(updates.size());
    for (const EdgeCostUpdate& e : updates) edges.push_back({e.u, e.v});
    size_t cells_changed = 0;
    ATIS_ASSIGN_OR_RETURN(
        auto customization,
        RecustomizeForEdges(*prev->overlay->topology,
                            *prev->overlay->customization, edges,
                            updater_store_.get(), &cells_changed,
                            new_version));
    next->overlay = std::make_shared<const OverlayIndex>(
        OverlayIndex{prev->overlay->topology, std::move(customization)});
    overlay_cells_recustomized_.fetch_add(cells_changed,
                                          std::memory_order_relaxed);
  }
  if (any_decrease && landmark_set_ != nullptr) {
    // A lowered cost breaks the ALT lower-bound proof; recompute the
    // distance columns for the same landmark placement so Version 4
    // stays exact under live traffic.
    ATIS_ASSIGN_OR_RETURN(
        LandmarkSet fresh,
        RecomputeLandmarks(landmark_set_->landmarks(), write_graph_));
    landmark_set_ =
        std::make_shared<const LandmarkSet>(std::move(fresh));
    next->estimator =
        std::shared_ptr<const Estimator>(MakeLandmarkEstimator(landmark_set_));
    landmark_revalidations_.fetch_add(1, std::memory_order_relaxed);
    snapshot_revalidations_metric_->Increment();
  }

  // Publish: one pointer swap. Record the batch in the dirty set for
  // lazy replica catch-up, and GC entries every replica has applied.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const EdgeCostUpdate& e : updates) {
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(e.u)) << 32) |
          static_cast<uint32_t>(e.v);
      dirty_edges_[key] = DirtyEdge{e.cost, new_version};
    }
    uint64_t min_version = new_version;
    for (const uint64_t v : replica_version_) {
      min_version = std::min(min_version, v);
    }
    std::erase_if(dirty_edges_, [&](const auto& kv) {
      return kv.second.version <= min_version;
    });
    head_ = std::move(next);
    published_version_.store(new_version, std::memory_order_release);
  }
  snapshot_published_metric_->Increment();
  obs::MetricsRegistry::Default()
      .GetGauge("atis_snapshot_version",
                "Currently published metric version (1 at construction)")
      .Set(static_cast<double>(new_version));

  // Cache invalidation AFTER publication: a query still pinned at the
  // old version can no longer insert past this point (its version guard
  // fails), so the invalidation cannot be raced stale.
  if (cache_) {
    if (!any_decrease && prev->overlay != nullptr) {
      // Pure increases cannot improve a route that avoids the updated
      // edges, so only cached paths through their cells can be wrong.
      std::vector<int32_t> regions;
      regions.reserve(2 * updates.size());
      for (const EdgeCostUpdate& e : updates) {
        regions.push_back(prev->overlay->topology->CellOf(e.u));
        regions.push_back(prev->overlay->topology->CellOf(e.v));
      }
      std::sort(regions.begin(), regions.end());
      regions.erase(std::unique(regions.begin(), regions.end()),
                    regions.end());
      const size_t invalidated = cache_->InvalidateRegions(regions);
      cache_region_invalidated_->Increment(invalidated);
    } else {
      // Decreases (or region-blind servers) fall back to the global
      // epoch bump: everything recomputes.
      cache_->BumpEpoch();
    }
  }
  traffic_updates_applied_.fetch_add(updates.size(),
                                     std::memory_order_relaxed);
  traffic_update_batches_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status RouteServer::RecoverFromWal(graph::Graph* base) {
  namespace fs = std::filesystem;
  const auto started = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::create_directories(options_.wal.dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create WAL directory " +
                               options_.wal.dir + ": " + ec.message());
  }

  // Newest checkpoint wins; older ones are superseded garbage. Only
  // names matching checkpoint-<digits>.atisg exactly count — a crash
  // between WriteFileAtomic's tmp write and its rename leaves a
  // 'checkpoint-<seq>.atisg.tmp.<pid>' sibling behind, and trusting it
  // would load a possibly-partial file over a valid older checkpoint.
  // Stale tmp files are unlinked here so they cannot pile up.
  const auto parse_checkpoint_seq =
      [](const std::string& name) -> std::pair<bool, uint64_t> {
    constexpr std::string_view kPrefix = "checkpoint-";
    constexpr std::string_view kSuffix = ".atisg";
    if (name.size() <= kPrefix.size() + kSuffix.size()) return {false, 0};
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) return {false, 0};
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      return {false, 0};
    }
    uint64_t seq = 0;
    for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return {false, 0};
      seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    return {true, seq};
  };
  uint64_t ckpt_seq = 0;
  std::string ckpt_path;
  for (const auto& entry : fs::directory_iterator(options_.wal.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      fs::remove(entry.path(), ec);
      continue;
    }
    const auto [is_checkpoint, seq] = parse_checkpoint_seq(name);
    if (!is_checkpoint) continue;
    if (seq > ckpt_seq) {
      ckpt_seq = seq;
      ckpt_path = entry.path().string();
    }
  }
  if (!ckpt_path.empty()) {
    ATIS_ASSIGN_OR_RETURN(*base, graph::LoadGraphFile(ckpt_path));
  }

  // Replay every committed frame past the checkpoint onto the base
  // metric. Raw costs: the stores round them at load exactly as the live
  // update path rounds at apply.
  const std::string wal_path = options_.wal.dir + "/wal.atisw";
  ATIS_ASSIGN_OR_RETURN(
      recovery_,
      UpdateLog::Replay(
          wal_path, &disk_, ckpt_seq,
          [&](uint64_t, std::span<const EdgeCostUpdate> batch) -> Status {
            for (const EdgeCostUpdate& e : batch) {
              if (!(e.cost >= 0.0)) {
                return Status::Corruption("negative cost in WAL frame");
              }
              ATIS_RETURN_NOT_OK(base->SetEdgeCost(e.u, e.v, e.cost));
            }
            return Status::OK();
          }));

  UpdateLog::Options log;
  log.path = wal_path;
  log.disk = &disk_;
  log.sync_on_commit = options_.wal.sync_on_commit;
  ATIS_ASSIGN_OR_RETURN(wal_, UpdateLog::Open(std::move(log)));
  last_committed_seq_ = std::max(ckpt_seq, wal_->last_seq());
  recovery_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return Status::OK();
}

Status RouteServer::WriteCheckpoint(uint64_t seq) {
  namespace fs = std::filesystem;
  const std::string name = "checkpoint-" + std::to_string(seq) + ".atisg";
  // Crash-safe ordering: the checkpoint lands atomically (tmp + rename)
  // BEFORE the WAL resets. A crash between the two replays frames at or
  // below the checkpoint's seq — which recovery skips — never the
  // reverse, where truncated frames would be lost.
  ATIS_RETURN_NOT_OK(
      graph::SaveGraphFile(write_graph_, options_.wal.dir + "/" + name));
  ATIS_RETURN_NOT_OK(wal_->Reset());
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.wal.dir, ec)) {
    const std::string other = entry.path().filename().string();
    if (other.rfind("checkpoint-", 0) == 0 && other != name) {
      fs::remove(entry.path(), ec);
    }
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  wal_checkpoints_metric_->Increment();
  return Status::OK();
}

bool RouteServer::ServeDegraded(const RouteQuery& q,
                                const RouteCache::Key& key, Status cause,
                                const MetricState& pinned,
                                RouteResponse* resp) {
  // Fallback 1: a cached route, even one invalidated by a traffic update.
  // A slightly-stale route is still drivable; the degraded flag tells the
  // traveller it predates the latest costs.
  if (cache_) {
    RouteCache::StaleLookupResult stale = cache_->LookupAllowStale(key);
    if (stale.result.has_value()) {
      resp->result = *std::move(stale.result);
      resp->degraded = true;
      resp->served_via = ServedVia::kStaleCache;
      resp->degraded_cause = std::move(cause);
      resp->status = Status::OK();
      degraded_stale_->Increment();
      return true;
    }
  }
  // Fallback 2: exact in-memory Dijkstra on the pinned metric snapshot.
  // No storage I/O, so neither faults nor a quarantined replica can touch
  // it; Dijkstra regardless of the requested algorithm because it is
  // optimal, estimator-free, and microseconds at ATIS map scale.
  PathResult mem =
      DijkstraSearch(*pinned.snapshot, q.source, q.destination);
  resp->result = std::move(mem);
  resp->degraded = true;
  resp->served_via = ServedVia::kSnapshot;
  resp->degraded_cause = std::move(cause);
  resp->status = Status::OK();
  degraded_snapshot_->Increment();
  return true;
}

std::vector<int32_t> RouteServer::PathRegions(const PathResult& result,
                                              const OverlayIndex* overlay) {
  std::vector<int32_t> regions;
  if (overlay == nullptr || !result.found) return regions;
  const OverlayTopology& topo = *overlay->topology;
  regions.reserve(8);
  for (const graph::NodeId n : result.path) {
    const int32_t c = topo.CellOf(n);
    if (regions.empty() || regions.back() != c) regions.push_back(c);
  }
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()),
                regions.end());
  return regions;
}

std::shared_ptr<const OverlayIndex> RouteServer::overlay_index() {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ != nullptr ? head_->overlay : nullptr;
}

uint64_t RouteServer::overlay_metric_version() {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ != nullptr && head_->overlay != nullptr
             ? head_->overlay->customization->metric_version()
             : 0;
}

std::shared_ptr<const graph::Graph> RouteServer::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ != nullptr ? head_->snapshot : nullptr;
}

RouteServer::IngestStats RouteServer::ingest_stats() {
  IngestStats s;
  s.updates_applied =
      traffic_updates_applied_.load(std::memory_order_relaxed);
  s.update_batches =
      traffic_update_batches_.load(std::memory_order_relaxed);
  s.worker_catchups = worker_catchups_.load(std::memory_order_relaxed);
  s.landmark_revalidations =
      landmark_revalidations_.load(std::memory_order_relaxed);
  s.append_failures = wal_append_failures_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_written_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> writer(update_mu_);
  if (wal_ != nullptr) {
    s.wal_enabled = true;
    s.last_seq = last_committed_seq_;
    s.appended_batches = wal_->appended_batches();
    s.appended_records = wal_->appended_records();
    s.bytes_appended = wal_->bytes_appended();
    s.recovered_batches = recovery_.batches;
    s.recovered_records = recovery_.records;
    s.recovery_torn_tail = recovery_.torn_tail;
    s.recovery_seconds = recovery_seconds_;
  }
  return s;
}

Status RouteServer::write_path_status() {
  std::lock_guard<std::mutex> writer(update_mu_);
  return write_path_status_;
}

void RouteServer::RefreshObsGauges() {
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("atis_server_uptime_seconds",
               "Seconds since the route server finished construction")
      .Set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
               .count());
  if (slo_) slo_->PublishGauges(reg);
}

std::string RouteServer::StatuszJson() {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = pending_.size();
  }
  out << "{\"uptime_seconds\":" << uptime
      << ",\"num_workers\":" << engines_.size()
      << ",\"queue_depth\":" << queue_depth << ",\"build\":{\"layout\":\""
      << graph::StoreLayoutName(options_.layout)
      << "\",\"prefetch_depth\":" << options_.prefetch_depth
      << ",\"num_landmarks\":" << options_.num_landmarks
      << ",\"default_deadline_ms\":" << options_.default_deadline_ms
      << ",\"degraded_enabled\":"
      << (options_.enable_degraded ? "true" : "false") << "}";

  {
    const uint64_t batches =
        batches_executed_.load(std::memory_order_relaxed);
    const uint64_t members =
        batch_members_executed_.load(std::memory_order_relaxed);
    const uint64_t fetches = batch_fetches_.load(std::memory_order_relaxed);
    const uint64_t shared = batch_shared_.load(std::memory_order_relaxed);
    const uint64_t lookups = fetches + shared;
    out << ",\"batching\":{\"enabled\":"
        << (options_.max_batch > 1 ? "true" : "false")
        << ",\"max_batch\":" << options_.max_batch
        << ",\"window_us\":" << options_.batch_window_us
        << ",\"region_order\":" << options_.batch_region_order
        << ",\"batches\":" << batches << ",\"members\":" << members
        << ",\"avg_occupancy\":"
        << (batches > 0 ? static_cast<double>(members) /
                              static_cast<double>(batches)
                        : 0.0)
        << ",\"adjacency_fetches\":" << fetches
        << ",\"shared_adjacency_hits\":" << shared
        << ",\"shared_hit_ratio\":"
        << (lookups > 0 ? static_cast<double>(shared) /
                              static_cast<double>(lookups)
                        : 0.0)
        << ",\"coalesced\":"
        << batch_coalesced_served_.load(std::memory_order_relaxed) << "}";
  }

  out << ",\"workers\":[";
  for (size_t w = 0; w < breakers_.size(); ++w) {
    const CircuitBreaker::Stats bs = breakers_[w]->stats();
    out << (w == 0 ? "" : ",") << "{\"id\":" << w << ",\"breaker\":{"
        << "\"state\":\"" << CircuitBreakerStateName(breakers_[w]->state())
        << "\",\"opened\":" << bs.opened << ",\"probes\":" << bs.probes
        << ",\"rejected\":" << bs.rejected << "}}";
  }
  out << "]";

  if (cache_) {
    const RouteCache::Stats cs = cache_->stats();
    const uint64_t lookups = cs.hits + cs.misses;
    out << ",\"cache\":{\"size\":" << cache_->size()
        << ",\"epoch\":" << cache_->epoch() << ",\"hits\":" << cs.hits
        << ",\"misses\":" << cs.misses << ",\"hit_ratio\":"
        << (lookups > 0 ? static_cast<double>(cs.hits) /
                              static_cast<double>(lookups)
                        : 0.0)
        << ",\"stale_evictions\":" << cs.stale_evictions
        << ",\"stale_serves\":" << cs.stale_serves
        << ",\"region_invalidations\":" << cs.region_invalidations
        << ",\"region_entries_invalidated\":"
        << cs.region_entries_invalidated << "}";
  }

  {
    std::shared_ptr<const OverlayIndex> ov = overlay_index();
    if (ov != nullptr) {
      out << ",\"overlay\":{\"cell_order\":" << options_.overlay_cell_order
          << ",\"cells\":" << ov->topology->num_cells()
          << ",\"boundary_nodes\":" << ov->topology->num_boundary_nodes()
          << ",\"shortcuts\":" << ov->topology->num_shortcuts()
          << ",\"metric_version\":"
          << ov->customization->metric_version()
          << ",\"traffic_updates\":"
          << traffic_updates_applied_.load(std::memory_order_relaxed)
          << ",\"cells_recustomized\":"
          << overlay_cells_recustomized_.load(std::memory_order_relaxed)
          << "}";
    }
  }

  {
    const IngestStats is = ingest_stats();
    out << ",\"ingestion\":{\"published_version\":" << published_version()
        << ",\"update_batches\":" << is.update_batches
        << ",\"updates_applied\":" << is.updates_applied
        << ",\"worker_catchups\":" << is.worker_catchups
        << ",\"landmark_revalidations\":" << is.landmark_revalidations
        << ",\"wal\":{\"enabled\":" << (is.wal_enabled ? "true" : "false");
    if (is.wal_enabled) {
      out << ",\"last_seq\":" << is.last_seq
          << ",\"appended_batches\":" << is.appended_batches
          << ",\"appended_records\":" << is.appended_records
          << ",\"bytes_appended\":" << is.bytes_appended
          << ",\"append_failures\":" << is.append_failures
          << ",\"checkpoints\":" << is.checkpoints
          << ",\"recovery\":{\"batches\":" << is.recovered_batches
          << ",\"records\":" << is.recovered_records
          << ",\"torn_tail\":"
          << (is.recovery_torn_tail ? "true" : "false")
          << ",\"seconds\":" << is.recovery_seconds << "}";
    }
    out << "}}";
  }

  const storage::BufferPoolStats ps = pool_->stats();
  const uint64_t accesses = ps.hits + ps.misses;
  out << ",\"buffer_pool\":{\"hits\":" << ps.hits
      << ",\"misses\":" << ps.misses << ",\"hit_ratio\":"
      << (accesses > 0
              ? static_cast<double>(ps.hits) / static_cast<double>(accesses)
              : 0.0)
      << ",\"evictions\":" << ps.evictions
      << ",\"read_retries\":" << ps.read_retries
      << ",\"prefetch\":{\"issued\":" << ps.prefetch_issued
      << ",\"filled\":" << ps.prefetch_filled
      << ",\"useful\":" << ps.prefetch_useful
      << ",\"wasted\":" << ps.prefetch_wasted
      << ",\"dropped\":" << ps.prefetch_dropped << "}}";

  if (trace_ring_) {
    out << ",\"traces\":{\"directory\":\""
        << obs::EscapeJson(trace_ring_->directory())
        << "\",\"appended\":" << trace_ring_->appended()
        << ",\"capacity\":" << trace_ring_->capacity()
        << ",\"sample_every\":" << options_.obs.sample_every << "}";
  }
  if (slow_log_) {
    out << ",\"slow_query_log\":{\"path\":\""
        << obs::EscapeJson(slow_log_->path())
        << "\",\"threshold_ms\":" << slow_log_->threshold_ms()
        << ",\"records\":" << slow_log_->records_written() << "}";
  }
  if (slo_) {
    out << ",\"slo\":{\"availability_target\":"
        << slo_->availability_target() << ",\"windows\":[";
    bool first = true;
    for (const obs::SloWindows::Window& w : slo_->Snapshot()) {
      out << (first ? "" : ",") << "{\"window\":\"" << w.name
          << "\",\"total\":" << w.total << ",\"errors\":" << w.errors
          << ",\"degraded\":" << w.degraded << ",\"shed\":" << w.shed
          << ",\"qps\":" << w.qps << ",\"availability\":" << w.availability
          // An infinite burn (target == 1.0) has no JSON spelling; clamp.
          << ",\"burn_rate\":"
          << (std::isfinite(w.burn_rate) ? w.burn_rate : 1e12)
          << ",\"p50_ms\":" << w.p50_seconds * 1000.0
          << ",\"p95_ms\":" << w.p95_seconds * 1000.0
          << ",\"p99_ms\":" << w.p99_seconds * 1000.0 << "}";
      first = false;
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

RouteResponse RouteServer::RunOne(size_t worker_id, size_t query_index,
                                  const RouteQuery& q, BatchContext* batch,
                                  uint64_t batch_id,
                                  const MetricState& pinned,
                                  const Status& replica_health) {
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);
  resp.batch_id = batch_id;
  resp.metric_version = pinned.version;

  const auto started = std::chrono::steady_clock::now();
  const uint64_t deadline_ms =
      q.deadline_ms != 0 ? q.deadline_ms : options_.default_deadline_ms;
  const Deadline deadline =
      deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms) : Deadline();

  // Mirror every block this thread touches into resp.io: exact per-query
  // accounting even though the disk (and its meter) are shared. The scope
  // covers the whole query so a sampled tracer reading &resp.io sees a
  // monotone per-thread counter and every span delta stays non-negative.
  storage::IoMeter::ScopedThreadCounters io_scope(&resp.io);

  // When sampling is configured every query runs traced — the span
  // bookkeeping is pointer bumps next to metered block reads — but only
  // head-sampled, slow, degraded, or errored trees reach the ring. (A
  // trace cannot be begun retroactively once the query turns out slow.)
  const bool head_sampled = sampler_ != nullptr && sampler_->Sample();
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::Tracer::InstallScope> install;
  obs::TraceSpan* root = nullptr;
  if (sampler_ != nullptr) {
    tracer = std::make_unique<obs::Tracer>(&resp.io);
    install = std::make_unique<obs::Tracer::InstallScope>(tracer.get());
    root = tracer->BeginSpan("query", "query");
    root->Tag("worker", std::to_string(worker_id));
    root->Tag("source", std::to_string(q.source));
    root->Tag("destination", std::to_string(q.destination));
    root->Tag("algorithm", std::string(AlgorithmName(q.algorithm)));
    if (batch_id != 0) {
      root->Tag("batch", std::to_string(batch_id));
      root->Tag("coalesced", "0");  // followers never reach RunOne
    }
  }

  const RouteCache::Key key{q.source, q.destination, q.algorithm, q.version};
  uint64_t observed_epoch = 0;
  uint64_t observed_seq = 0;
  bool answered_from_cache = false;
  bool answered_stale_replica = false;
  if (!replica_health.ok()) {
    // The replica could not catch up to the pinned version; its stored
    // metric is behind what this batch promised. Fall down the degraded
    // ladder — a stale cached route first, else the exact answer on the
    // pinned in-memory snapshot — but never an inconsistent metered run.
    if (options_.enable_degraded) {
      ServeDegraded(q, key, replica_health, pinned, &resp);
    } else {
      resp.result = DijkstraSearch(*pinned.snapshot, q.source, q.destination);
      resp.degraded = true;
      resp.served_via = ServedVia::kSnapshot;
      resp.degraded_cause = replica_health;
      degraded_snapshot_->Increment();
    }
    answered_stale_replica = true;
  }
  if (cache_ && !answered_stale_replica) {
    observed_epoch = cache_->epoch();
    observed_seq = cache_->invalidation_seq();
    // A degraded-capable server keeps stale entries around (miss, no
    // eviction): they are the first fallback when this recompute fails,
    // and a successful Insert overwrites them anyway.
    RouteCache::LookupResult cached =
        cache_->Lookup(key, /*evict_stale=*/!options_.enable_degraded);
    if (cached.stale_evicted) cache_stale_->Increment();
    if (cached.result.has_value()) {
      cache_hits_->Increment();
      resp.cache_hit = true;
      resp.served_via = ServedVia::kCache;
      resp.result = *std::move(cached.result);
      answered_from_cache = true;
    } else {
      cache_misses_->Increment();
    }
  }

  if (!answered_from_cache && !answered_stale_replica) {
    CircuitBreaker& breaker = *breakers_[worker_id];
    const bool admitted = breaker.AllowRequest();
    Result<PathResult> r = [&]() -> Result<PathResult> {
      if (!admitted) {
        return Status::Unavailable("replica quarantined by circuit breaker");
      }
      DbSearchEngine& engine = *engines_[worker_id];
      switch (q.algorithm) {
        case Algorithm::kIterative:
          return engine.Iterative(q.source, q.destination, deadline, batch);
        case Algorithm::kDijkstra:
          return engine.Dijkstra(q.source, q.destination, deadline, batch);
        case Algorithm::kAStar:
          return engine.AStar(q.source, q.destination, q.version, deadline,
                              batch);
      }
      return Status::InvalidArgument("unknown algorithm");
    }();
    if (!admitted) {
      breaker_rejections_->Increment();
    } else if (r.ok()) {
      // Feed the breaker storage health only: faults extend the streak, a
      // completed search resets it, and a deadline expiry says nothing
      // about the replica (slow != broken), so it leaves the streak alone.
      breaker.RecordSuccess();
    } else if (r.status().IsDeadlineExceeded()) {
      deadline_exceeded_->Increment();
    } else {
      if (breaker.RecordFailure()) breaker_opened_->Increment();
    }

    if (r.ok()) {
      resp.result = std::move(r).value();
      // Cache successful answers (including proven "no route"); the insert
      // is dropped inside the cache when a traffic update — epoch bump or
      // region invalidation — raced this query, and skipped entirely when
      // a newer metric version published mid-query: an answer computed at
      // version N must never outlive version N+1's invalidation.
      if (cache_ &&
          pinned.version ==
              published_version_.load(std::memory_order_acquire)) {
        cache_->Insert(key, observed_epoch, resp.result,
                       PathRegions(resp.result, pinned.overlay.get()),
                       observed_seq);
      }
    } else if (!options_.enable_degraded ||
               !ServeDegraded(q, key, r.status(), pinned, &resp)) {
      resp.status = r.status();
      resp.served_via = ServedVia::kNone;
    }
  }
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  // Observability epilogue: classify the finished query, then persist /
  // log / record. File writes happen only for sampled or slow queries, so
  // the common path adds a histogram increment and a mutexed O(1) SLO add.
  if (root != nullptr) {
    root->Tag("served_via", ServedViaName(resp.served_via));
    if (!resp.status.ok()) root->Tag("error", resp.status.ToString());
    tracer->EndSpan(root);
    install.reset();  // uninstall before any further work on this thread
  }
  const double latency_ms = resp.latency_seconds * 1000.0;
  const bool slow =
      slow_log_ != nullptr && latency_ms >= slow_log_->threshold_ms();
  if (slow) slow_queries_->Increment();
  bool trace_persisted = false;
  if (tracer != nullptr &&
      (head_sampled || slow || resp.degraded || !resp.status.ok())) {
    std::string label = std::string(AlgorithmName(q.algorithm)) + " " +
                        std::to_string(q.source) + "->" +
                        std::to_string(q.destination) + " via " +
                        ServedViaName(resp.served_via);
    trace_persisted = trace_ring_->Append(*tracer, label).ok();
    if (trace_persisted) traces_sampled_->Increment();
  }
  if (slow_log_ != nullptr) {
    obs::SlowQueryLog::Record rec;
    rec.source = q.source;
    rec.destination = q.destination;
    rec.algorithm = std::string(AlgorithmName(q.algorithm));
    rec.latency_ms = latency_ms;
    rec.blocks_read = resp.io.blocks_read;
    rec.cache_hit = resp.cache_hit;
    rec.degraded = resp.degraded;
    rec.served_via = ServedViaName(resp.served_via);
    rec.has_deadline = deadline.active();
    if (rec.has_deadline) {
      rec.deadline_remaining_ms = deadline.remaining_seconds() * 1000.0;
    }
    rec.worker_id = resp.worker_id;
    rec.batch_id = batch_id;
    rec.coalesced = false;
    if (!resp.status.ok()) rec.status = resp.status.ToString();
    rec.sampled = trace_persisted;
    // Degraded / errored queries are logged regardless of latency — the
    // log is the serving-path incident record, not just a latency outlier
    // list.
    slow_log_->MaybeRecord(rec,
                           /*force=*/resp.degraded || !resp.status.ok());
  }
  if (slo_) {
    slo_->Record({.latency_seconds = resp.latency_seconds,
                  .ok = resp.status.ok(),
                  .degraded = resp.degraded,
                  .shed = false});
  }
  return resp;
}

}  // namespace atis::core
