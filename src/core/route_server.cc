#include "core/route_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/landmarks.h"
#include "core/memory_search.h"
#include "obs/metrics.h"

namespace atis::core {

const char* ServedViaName(ServedVia via) {
  switch (via) {
    case ServedVia::kEngine:
      return "engine";
    case ServedVia::kCache:
      return "cache";
    case ServedVia::kStaleCache:
      return "stale-cache";
    case ServedVia::kSnapshot:
      return "snapshot";
    case ServedVia::kNone:
      return "none";
  }
  return "?";
}

RouteServer::RouteServer(const graph::Graph& g)
    : RouteServer(g, Options()) {}

RouteServer::RouteServer(const graph::Graph& g, Options options) {
  if (options.num_workers == 0) options.num_workers = 1;
  const size_t frames = options.pool_frames != 0
                            ? options.pool_frames
                            : 128 * options.num_workers;
  const size_t shards = options.pool_shards != 0
                            ? options.pool_shards
                            : std::max<size_t>(4, 2 * options.num_workers);
  disk_.SetLatencyModel(options.disk_latency);
  pool_ = std::make_unique<storage::BufferPool>(&disk_, frames, shards);

  DbSearchOptions search = options.search;
  search.statement_at_a_time = false;  // unsafe with concurrent pinners
  search.prefetch_depth = options.prefetch_depth;

  // Load one store replica per worker (sequentially; the workers are not
  // running yet). The first failure wins and the server stays inert.
  const graph::RelationalGraphStore::LoadOptions load_options{
      options.layout};
  for (size_t w = 0; w < options.num_workers; ++w) {
    auto store = std::make_unique<graph::RelationalGraphStore>(pool_.get());
    if (Status st = store->Load(g, load_options); !st.ok()) {
      init_status_ = std::move(st);
      return;
    }
    engines_.push_back(std::make_unique<DbSearchEngine>(
        store.get(), pool_.get(), search));
    stores_.push_back(std::move(store));
  }

  if (options.num_landmarks > 0) {
    // One ALT table serves every worker: select on the float-rounded
    // metric (the one the engines accumulate), persist/load it through
    // replica 0's storage path for metered accounting, and share the
    // immutable result.
    init_status_ = [&]() -> Status {
      LandmarkOptions lm;
      lm.num_landmarks = options.num_landmarks;
      ATIS_ASSIGN_OR_RETURN(LandmarkSet selected,
                            SelectLandmarks(WithStoredEdgeCosts(g), lm));
      ATIS_ASSIGN_OR_RETURN(auto table,
                            PersistAndLoadLandmarks(selected,
                                                    stores_.front().get()));
      std::shared_ptr<const Estimator> estimator =
          MakeLandmarkEstimator(std::move(table));
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableLandmarks(estimator));
      }
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.enable_cache) {
    cache_ = std::make_unique<RouteCache>(options.cache);
    auto& reg = obs::MetricsRegistry::Default();
    cache_hits_ = &reg.GetCounter("atis_route_cache_hits_total",
                                  "Route queries answered from the cache");
    cache_misses_ = &reg.GetCounter(
        "atis_route_cache_misses_total",
        "Route queries that missed the cache and ran a search");
    cache_stale_ = &reg.GetCounter(
        "atis_route_cache_stale_evictions_total",
        "Cached routes evicted because a traffic update bumped the epoch");
  }

  {
    auto& reg = obs::MetricsRegistry::Default();
    deadline_exceeded_ = &reg.GetCounter(
        "atis_server_deadline_exceeded_total",
        "Route queries whose search ran past its deadline");
    degraded_stale_ = &reg.GetCounter(
        "atis_server_degraded_stale_total",
        "Degraded answers served from a stale cache entry");
    degraded_snapshot_ = &reg.GetCounter(
        "atis_server_degraded_snapshot_total",
        "Degraded answers computed on the in-memory graph snapshot");
    breaker_opened_ = &reg.GetCounter(
        "atis_server_breaker_open_transitions_total",
        "Replica circuit breakers opened by consecutive storage faults");
    breaker_rejections_ = &reg.GetCounter(
        "atis_server_breaker_rejections_total",
        "Route queries refused a quarantined replica");
    admission_shed_ = &reg.GetCounter(
        "atis_server_admission_shed_total",
        "Route queries shed by admission control (kResourceExhausted)");
  }

  for (size_t w = 0; w < options.num_workers; ++w) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options.breaker));
  }
  // Degraded answers run on the metric the replicas actually store, so a
  // snapshot route costs the same as the engine would have reported.
  snapshot_ = WithStoredEdgeCosts(g);
  options_ = options;

  // Resilience knobs go live only after every replica (and the landmark
  // table) loaded cleanly — construction itself never draws a fault.
  pool_->SetRetryPolicy(options.retry);
  disk_.SetFaultProfile(options.fault_profile);

  if (options.prefetch_depth > 0) {
    pool_->StartPrefetchWorkers(
        options.prefetch_workers != 0 ? options.prefetch_workers : 2);
  }

  workers_.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

RouteServer::~RouteServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<RouteResponse>> RouteServer::ServeBatch(
    const std::vector<RouteQuery>& queries) {
  ATIS_RETURN_NOT_OK(init_status_);
  std::vector<RouteResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Admission control: a bounded server accepts one batch's worth of work
  // per worker plus a fixed queue; the rest is shed immediately rather
  // than queued behind a saturated pool (load shedding beats unbounded
  // latency under overload).
  size_t admitted = queries.size();
  if (options_.max_queue_depth > 0) {
    admitted = std::min(queries.size(),
                        engines_.size() + options_.max_queue_depth);
  }
  for (size_t i = admitted; i < queries.size(); ++i) {
    responses[i].query_index = i;
    responses[i].served_via = ServedVia::kNone;
    responses[i].status = Status::ResourceExhausted(
        "route server saturated: query shed by admission control");
    admission_shed_->Increment();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &queries;
    out_ = &responses;
    limit_ = admitted;
    next_ = 0;
    done_ = 0;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == limit_; });
    batch_ = nullptr;
    out_ = nullptr;
  }
  return responses;
}

void RouteServer::WorkerLoop(size_t worker_id) {
  // Per-worker series are resolved once; the references stay valid for the
  // registry's lifetime.
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"worker", std::to_string(worker_id)}};
  obs::Counter& served =
      reg.GetCounter("atis_server_queries_total",
                     "Route queries served by the worker pool", labels);
  obs::Counter& failed =
      reg.GetCounter("atis_server_query_failures_total",
                     "Route queries that returned an error", labels);
  obs::Histogram& latency = reg.GetHistogram(
      "atis_server_query_latency_seconds",
      "Per-query wall time inside a worker",
      obs::Histogram::LatencyBounds(), labels);

  while (true) {
    size_t idx = 0;
    const RouteQuery* query = nullptr;
    std::vector<RouteResponse>* out = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && next_ < limit_);
      });
      if (stop_) return;
      idx = next_++;
      query = &(*batch_)[idx];
      out = out_;
    }

    RouteResponse resp = RunOne(worker_id, idx, *query);
    served.Increment();
    if (!resp.status.ok()) failed.Increment();
    latency.Observe(resp.latency_seconds);

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*out)[idx] = std::move(resp);
      if (++done_ == limit_) done_cv_.notify_all();
    }
  }
}

Status RouteServer::UpdateEdgeCost(graph::NodeId u, graph::NodeId v,
                                   double cost) {
  ATIS_RETURN_NOT_OK(init_status_);
  for (auto& store : stores_) {
    ATIS_RETURN_NOT_OK(store->UpdateEdgeCost(u, v, cost));
  }
  // Keep the degraded-mode snapshot on the stores' float-rounded metric.
  ATIS_RETURN_NOT_OK(
      snapshot_.SetEdgeCost(u, v, static_cast<float>(cost)));
  // Bump after every replica carries the new cost: a lookup that sees the
  // new epoch recomputes against updated stores only.
  if (cache_) cache_->BumpEpoch();
  return Status::OK();
}

bool RouteServer::ServeDegraded(const RouteQuery& q,
                                const RouteCache::Key& key, Status cause,
                                RouteResponse* resp) {
  // Fallback 1: a cached route, even one invalidated by a traffic update.
  // A slightly-stale route is still drivable; the degraded flag tells the
  // traveller it predates the latest costs.
  if (cache_) {
    RouteCache::StaleLookupResult stale = cache_->LookupAllowStale(key);
    if (stale.result.has_value()) {
      resp->result = *std::move(stale.result);
      resp->degraded = true;
      resp->served_via = ServedVia::kStaleCache;
      resp->degraded_cause = std::move(cause);
      resp->status = Status::OK();
      degraded_stale_->Increment();
      return true;
    }
  }
  // Fallback 2: exact in-memory Dijkstra on the last-good snapshot. No
  // storage I/O, so neither faults nor a quarantined replica can touch
  // it; Dijkstra regardless of the requested algorithm because it is
  // optimal, estimator-free, and microseconds at ATIS map scale.
  PathResult mem = DijkstraSearch(snapshot_, q.source, q.destination);
  resp->result = std::move(mem);
  resp->degraded = true;
  resp->served_via = ServedVia::kSnapshot;
  resp->degraded_cause = std::move(cause);
  resp->status = Status::OK();
  degraded_snapshot_->Increment();
  return true;
}

RouteResponse RouteServer::RunOne(size_t worker_id, size_t query_index,
                                  const RouteQuery& q) {
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);

  const auto started = std::chrono::steady_clock::now();
  const uint64_t deadline_ms =
      q.deadline_ms != 0 ? q.deadline_ms : options_.default_deadline_ms;
  const Deadline deadline =
      deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms) : Deadline();

  const RouteCache::Key key{q.source, q.destination, q.algorithm, q.version};
  uint64_t observed_epoch = 0;
  if (cache_) {
    observed_epoch = cache_->epoch();
    // A degraded-capable server keeps stale entries around (miss, no
    // eviction): they are the first fallback when this recompute fails,
    // and a successful Insert overwrites them anyway.
    RouteCache::LookupResult cached =
        cache_->Lookup(key, /*evict_stale=*/!options_.enable_degraded);
    if (cached.stale_evicted) cache_stale_->Increment();
    if (cached.result.has_value()) {
      cache_hits_->Increment();
      resp.cache_hit = true;
      resp.served_via = ServedVia::kCache;
      resp.result = *std::move(cached.result);
      resp.latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      return resp;
    }
    cache_misses_->Increment();
  }

  CircuitBreaker& breaker = *breakers_[worker_id];
  const bool admitted = breaker.AllowRequest();
  Result<PathResult> r = [&]() -> Result<PathResult> {
    if (!admitted) {
      return Status::Unavailable("replica quarantined by circuit breaker");
    }
    // Mirror every block this thread touches into resp.io: exact
    // per-query accounting even though the disk (and its meter) are
    // shared.
    storage::IoMeter::ScopedThreadCounters scope(&resp.io);
    DbSearchEngine& engine = *engines_[worker_id];
    switch (q.algorithm) {
      case Algorithm::kIterative:
        return engine.Iterative(q.source, q.destination, deadline);
      case Algorithm::kDijkstra:
        return engine.Dijkstra(q.source, q.destination, deadline);
      case Algorithm::kAStar:
        return engine.AStar(q.source, q.destination, q.version, deadline);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!admitted) {
    breaker_rejections_->Increment();
  } else if (r.ok()) {
    // Feed the breaker storage health only: faults extend the streak, a
    // completed search resets it, and a deadline expiry says nothing
    // about the replica (slow != broken), so it leaves the streak alone.
    breaker.RecordSuccess();
  } else if (r.status().IsDeadlineExceeded()) {
    deadline_exceeded_->Increment();
  } else {
    if (breaker.RecordFailure()) breaker_opened_->Increment();
  }

  if (r.ok()) {
    resp.result = std::move(r).value();
    // Cache successful answers (including proven "no route"); the insert
    // is dropped inside the cache when a traffic update raced this query.
    if (cache_) cache_->Insert(key, observed_epoch, resp.result);
  } else if (!options_.enable_degraded ||
             !ServeDegraded(q, key, r.status(), &resp)) {
    resp.status = r.status();
    resp.served_via = ServedVia::kNone;
  }
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return resp;
}

}  // namespace atis::core
