#include "core/route_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/landmarks.h"
#include "obs/metrics.h"

namespace atis::core {

RouteServer::RouteServer(const graph::Graph& g)
    : RouteServer(g, Options()) {}

RouteServer::RouteServer(const graph::Graph& g, Options options) {
  if (options.num_workers == 0) options.num_workers = 1;
  const size_t frames = options.pool_frames != 0
                            ? options.pool_frames
                            : 128 * options.num_workers;
  const size_t shards = options.pool_shards != 0
                            ? options.pool_shards
                            : std::max<size_t>(4, 2 * options.num_workers);
  disk_.SetLatencyModel(options.disk_latency);
  pool_ = std::make_unique<storage::BufferPool>(&disk_, frames, shards);

  DbSearchOptions search = options.search;
  search.statement_at_a_time = false;  // unsafe with concurrent pinners

  // Load one store replica per worker (sequentially; the workers are not
  // running yet). The first failure wins and the server stays inert.
  for (size_t w = 0; w < options.num_workers; ++w) {
    auto store = std::make_unique<graph::RelationalGraphStore>(pool_.get());
    if (Status st = store->Load(g); !st.ok()) {
      init_status_ = std::move(st);
      return;
    }
    engines_.push_back(std::make_unique<DbSearchEngine>(
        store.get(), pool_.get(), search));
    stores_.push_back(std::move(store));
  }

  if (options.num_landmarks > 0) {
    // One ALT table serves every worker: select on the float-rounded
    // metric (the one the engines accumulate), persist/load it through
    // replica 0's storage path for metered accounting, and share the
    // immutable result.
    init_status_ = [&]() -> Status {
      LandmarkOptions lm;
      lm.num_landmarks = options.num_landmarks;
      ATIS_ASSIGN_OR_RETURN(LandmarkSet selected,
                            SelectLandmarks(WithStoredEdgeCosts(g), lm));
      ATIS_ASSIGN_OR_RETURN(auto table,
                            PersistAndLoadLandmarks(selected,
                                                    stores_.front().get()));
      std::shared_ptr<const Estimator> estimator =
          MakeLandmarkEstimator(std::move(table));
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableLandmarks(estimator));
      }
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.enable_cache) {
    cache_ = std::make_unique<RouteCache>(options.cache);
    auto& reg = obs::MetricsRegistry::Default();
    cache_hits_ = &reg.GetCounter("atis_route_cache_hits_total",
                                  "Route queries answered from the cache");
    cache_misses_ = &reg.GetCounter(
        "atis_route_cache_misses_total",
        "Route queries that missed the cache and ran a search");
    cache_stale_ = &reg.GetCounter(
        "atis_route_cache_stale_evictions_total",
        "Cached routes evicted because a traffic update bumped the epoch");
  }

  workers_.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

RouteServer::~RouteServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<RouteResponse>> RouteServer::ServeBatch(
    const std::vector<RouteQuery>& queries) {
  ATIS_RETURN_NOT_OK(init_status_);
  std::vector<RouteResponse> responses(queries.size());
  if (queries.empty()) return responses;

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &queries;
    out_ = &responses;
    next_ = 0;
    done_ = 0;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == queries.size(); });
    batch_ = nullptr;
    out_ = nullptr;
  }
  return responses;
}

void RouteServer::WorkerLoop(size_t worker_id) {
  // Per-worker series are resolved once; the references stay valid for the
  // registry's lifetime.
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"worker", std::to_string(worker_id)}};
  obs::Counter& served =
      reg.GetCounter("atis_server_queries_total",
                     "Route queries served by the worker pool", labels);
  obs::Counter& failed =
      reg.GetCounter("atis_server_query_failures_total",
                     "Route queries that returned an error", labels);
  obs::Histogram& latency = reg.GetHistogram(
      "atis_server_query_latency_seconds",
      "Per-query wall time inside a worker",
      obs::Histogram::LatencyBounds(), labels);

  while (true) {
    size_t idx = 0;
    const RouteQuery* query = nullptr;
    std::vector<RouteResponse>* out = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && next_ < batch_->size());
      });
      if (stop_) return;
      idx = next_++;
      query = &(*batch_)[idx];
      out = out_;
    }

    RouteResponse resp = RunOne(worker_id, idx, *query);
    served.Increment();
    if (!resp.status.ok()) failed.Increment();
    latency.Observe(resp.latency_seconds);

    {
      std::lock_guard<std::mutex> lock(mu_);
      (*out)[idx] = std::move(resp);
      if (++done_ == batch_->size()) done_cv_.notify_all();
    }
  }
}

Status RouteServer::UpdateEdgeCost(graph::NodeId u, graph::NodeId v,
                                   double cost) {
  ATIS_RETURN_NOT_OK(init_status_);
  for (auto& store : stores_) {
    ATIS_RETURN_NOT_OK(store->UpdateEdgeCost(u, v, cost));
  }
  // Bump after every replica carries the new cost: a lookup that sees the
  // new epoch recomputes against updated stores only.
  if (cache_) cache_->BumpEpoch();
  return Status::OK();
}

RouteResponse RouteServer::RunOne(size_t worker_id, size_t query_index,
                                  const RouteQuery& q) {
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);

  const auto started = std::chrono::steady_clock::now();

  const RouteCache::Key key{q.source, q.destination, q.algorithm, q.version};
  uint64_t observed_epoch = 0;
  if (cache_) {
    observed_epoch = cache_->epoch();
    RouteCache::LookupResult cached = cache_->Lookup(key);
    if (cached.stale_evicted) cache_stale_->Increment();
    if (cached.result.has_value()) {
      cache_hits_->Increment();
      resp.cache_hit = true;
      resp.result = *std::move(cached.result);
      resp.latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      return resp;
    }
    cache_misses_->Increment();
  }

  Result<PathResult> r = [&]() -> Result<PathResult> {
    // Mirror every block this thread touches into resp.io: exact per-query
    // accounting even though the disk (and its meter) are shared.
    storage::IoMeter::ScopedThreadCounters scope(&resp.io);
    DbSearchEngine& engine = *engines_[worker_id];
    switch (q.algorithm) {
      case Algorithm::kIterative:
        return engine.Iterative(q.source, q.destination);
      case Algorithm::kDijkstra:
        return engine.Dijkstra(q.source, q.destination);
      case Algorithm::kAStar:
        return engine.AStar(q.source, q.destination, q.version);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (r.ok()) {
    resp.result = std::move(r).value();
    // Cache successful answers (including proven "no route"); the insert
    // is dropped inside the cache when a traffic update raced this query.
    if (cache_) cache_->Insert(key, observed_epoch, resp.result);
  } else {
    resp.status = r.status();
  }
  return resp;
}

}  // namespace atis::core
