#include "core/route_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include <cmath>
#include <sstream>

#include "core/landmarks.h"
#include "core/memory_search.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/slo.h"
#include "graph/spatial_layout.h"
#include "obs/trace.h"
#include "obs/trace_ring.h"

namespace atis::core {

const char* ServedViaName(ServedVia via) {
  switch (via) {
    case ServedVia::kEngine:
      return "engine";
    case ServedVia::kCache:
      return "cache";
    case ServedVia::kStaleCache:
      return "stale-cache";
    case ServedVia::kSnapshot:
      return "snapshot";
    case ServedVia::kCoalesced:
      return "coalesced";
    case ServedVia::kNone:
      return "none";
  }
  return "?";
}

RouteServer::RouteServer(const graph::Graph& g)
    : RouteServer(g, Options()) {}

RouteServer::RouteServer(const graph::Graph& g, Options options) {
  if (options.num_workers == 0) options.num_workers = 1;
  const size_t frames = options.pool_frames != 0
                            ? options.pool_frames
                            : 128 * options.num_workers;
  const size_t shards = options.pool_shards != 0
                            ? options.pool_shards
                            : std::max<size_t>(4, 2 * options.num_workers);
  disk_.SetLatencyModel(options.disk_latency);
  pool_ = std::make_unique<storage::BufferPool>(&disk_, frames, shards);

  DbSearchOptions search = options.search;
  search.statement_at_a_time = false;  // unsafe with concurrent pinners
  search.prefetch_depth = options.prefetch_depth;

  // Load one store replica per worker (sequentially; the workers are not
  // running yet). The first failure wins and the server stays inert.
  const graph::RelationalGraphStore::LoadOptions load_options{
      options.layout};
  for (size_t w = 0; w < options.num_workers; ++w) {
    auto store = std::make_unique<graph::RelationalGraphStore>(pool_.get());
    if (Status st = store->Load(g, load_options); !st.ok()) {
      init_status_ = std::move(st);
      return;
    }
    engines_.push_back(std::make_unique<DbSearchEngine>(
        store.get(), pool_.get(), search));
    stores_.push_back(std::move(store));
  }

  if (options.num_landmarks > 0) {
    // One ALT table serves every worker: select on the float-rounded
    // metric (the one the engines accumulate), persist/load it through
    // replica 0's storage path for metered accounting, and share the
    // immutable result.
    init_status_ = [&]() -> Status {
      LandmarkOptions lm;
      lm.num_landmarks = options.num_landmarks;
      ATIS_ASSIGN_OR_RETURN(LandmarkSet selected,
                            SelectLandmarks(WithStoredEdgeCosts(g), lm));
      ATIS_ASSIGN_OR_RETURN(auto table,
                            PersistAndLoadLandmarks(selected,
                                                    stores_.front().get()));
      std::shared_ptr<const Estimator> estimator =
          MakeLandmarkEstimator(std::move(table));
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableLandmarks(estimator));
      }
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.overlay_cell_order > 0) {
    // Topology once (persisted through replica 0's metered storage path),
    // then per-metric customization parallelised across the replicas —
    // each store serves a disjoint cell stripe, so the shared pool sees
    // only read traffic. Every engine serves the same immutable index.
    init_status_ = [&]() -> Status {
      ATIS_ASSIGN_OR_RETURN(
          OverlayTopology built,
          OverlayTopology::Build(
              g, OverlayOptions{options.overlay_cell_order}));
      ATIS_ASSIGN_OR_RETURN(
          auto topology,
          PersistAndLoadOverlayTopology(built, stores_.front().get(), g));
      std::vector<graph::RelationalGraphStore*> replicas;
      replicas.reserve(stores_.size());
      for (auto& store : stores_) replicas.push_back(store.get());
      ATIS_ASSIGN_OR_RETURN(
          auto customization,
          CustomizeOverlay(*topology, replicas, /*metric_version=*/1));
      auto index = std::make_shared<const OverlayIndex>(
          OverlayIndex{std::move(topology), std::move(customization)});
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableOverlay(index));
      }
      overlay_ = std::move(index);
      return Status::OK();
    }();
    if (!init_status_.ok()) return;
  }

  if (options.enable_cache) {
    cache_ = std::make_unique<RouteCache>(options.cache);
    auto& reg = obs::MetricsRegistry::Default();
    cache_hits_ = &reg.GetCounter("atis_route_cache_hits_total",
                                  "Route queries answered from the cache");
    cache_misses_ = &reg.GetCounter(
        "atis_route_cache_misses_total",
        "Route queries that missed the cache and ran a search");
    cache_stale_ = &reg.GetCounter(
        "atis_route_cache_stale_evictions_total",
        "Cached routes evicted because a traffic update bumped the epoch");
    cache_region_invalidated_ = &reg.GetCounter(
        "atis_route_cache_region_invalidated_total",
        "Cached routes invalidated by region-scoped (overlay-cell) "
        "traffic updates");
  }

  {
    auto& reg = obs::MetricsRegistry::Default();
    deadline_exceeded_ = &reg.GetCounter(
        "atis_server_deadline_exceeded_total",
        "Route queries whose search ran past its deadline");
    degraded_stale_ = &reg.GetCounter(
        "atis_server_degraded_stale_total",
        "Degraded answers served from a stale cache entry");
    degraded_snapshot_ = &reg.GetCounter(
        "atis_server_degraded_snapshot_total",
        "Degraded answers computed on the in-memory graph snapshot");
    breaker_opened_ = &reg.GetCounter(
        "atis_server_breaker_open_transitions_total",
        "Replica circuit breakers opened by consecutive storage faults");
    breaker_rejections_ = &reg.GetCounter(
        "atis_server_breaker_rejections_total",
        "Route queries refused a quarantined replica");
    admission_shed_ = &reg.GetCounter(
        "atis_server_admission_shed_total",
        "Route queries shed by admission control (kResourceExhausted)");
    batch_batches_ = &reg.GetCounter(
        "atis_batch_batches_total",
        "Query batches executed through a shared BatchContext");
    batch_members_ = &reg.GetCounter(
        "atis_batch_members_total",
        "Route queries executed as members of a batch");
    batch_adjacency_fetches_ = &reg.GetCounter(
        "atis_batch_adjacency_fetches_total",
        "Metered adjacency fetches performed on behalf of a batch");
    batch_shared_hits_ = &reg.GetCounter(
        "atis_batch_shared_adjacency_hits_total",
        "Adjacency lookups served from a batch's shared scan cache "
        "(block reads a serial execution would have re-issued)");
    batch_coalesced_ = &reg.GetCounter(
        "atis_batch_coalesced_total",
        "Route queries answered by singleflight coalescing onto an "
        "identical query in the same batch");
  }

  // Observability: trace sampling, slow-query log, SLO windows. A broken
  // obs configuration fails construction the same way a broken replica
  // does — a server you cannot observe as configured should not serve.
  started_ = std::chrono::steady_clock::now();
  if (options.obs.sample_every > 0) {
    if (options.obs.trace_dir.empty()) {
      init_status_ = Status::InvalidArgument(
          "RouteServer: obs.sample_every > 0 requires obs.trace_dir");
      return;
    }
    obs::TraceRing::Options ring;
    ring.directory = options.obs.trace_dir;
    ring.capacity = options.obs.trace_ring_capacity;
    auto opened = obs::TraceRing::Open(std::move(ring));
    if (!opened.ok()) {
      init_status_ = opened.status();
      return;
    }
    trace_ring_ = std::move(opened).value();
    sampler_ = std::make_unique<obs::TraceSampler>(options.obs.sample_every);
    traces_sampled_ = &obs::MetricsRegistry::Default().GetCounter(
        "atis_server_traces_sampled_total",
        "Query span trees persisted to the trace ring (head-sampled or "
        "forced by a slow/degraded/errored query)");
  }
  if (options.obs.slow_query_ms > 0.0) {
    if (options.obs.slow_query_log_path.empty()) {
      init_status_ = Status::InvalidArgument(
          "RouteServer: obs.slow_query_ms > 0 requires "
          "obs.slow_query_log_path");
      return;
    }
    obs::SlowQueryLog::Options log;
    log.path = options.obs.slow_query_log_path;
    log.threshold_ms = options.obs.slow_query_ms;
    log.max_bytes = options.obs.slow_query_log_max_bytes;
    auto opened = obs::SlowQueryLog::Open(std::move(log));
    if (!opened.ok()) {
      init_status_ = opened.status();
      return;
    }
    slow_log_ = std::move(opened).value();
    slow_queries_ = &obs::MetricsRegistry::Default().GetCounter(
        "atis_server_slow_queries_total",
        "Queries at or over the slow-query threshold");
  }
  if (options.obs.enable_slo) {
    obs::SloWindows::Options slo;
    slo.availability_target = options.obs.availability_target;
    slo_ = std::make_unique<obs::SloWindows>(std::move(slo));
  }

  for (size_t w = 0; w < options.num_workers; ++w) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options.breaker));
  }
  // Degraded answers run on the metric the replicas actually store, so a
  // snapshot route costs the same as the engine would have reported.
  snapshot_ = WithStoredEdgeCosts(g);
  if (options.max_batch > 1) {
    regions_ = std::make_unique<RegionIndex>(snapshot_,
                                             options.batch_region_order);
  }
  options_ = options;

  // Resilience knobs go live only after every replica (and the landmark
  // table) loaded cleanly — construction itself never draws a fault.
  pool_->SetRetryPolicy(options.retry);
  disk_.SetFaultProfile(options.fault_profile);

  if (options.prefetch_depth > 0) {
    pool_->StartPrefetchWorkers(
        options.prefetch_workers != 0 ? options.prefetch_workers : 2);
  }

  workers_.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

RouteServer::~RouteServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<RouteResponse>> RouteServer::ServeBatch(
    const std::vector<RouteQuery>& queries) {
  ATIS_RETURN_NOT_OK(init_status_);
  std::vector<RouteResponse> responses(queries.size());
  if (queries.empty()) return responses;

  // Admission control: a bounded server accepts one batch's worth of work
  // per worker plus a fixed queue; the rest is shed immediately rather
  // than queued behind a saturated pool (load shedding beats unbounded
  // latency under overload).
  size_t admitted = queries.size();
  if (options_.max_queue_depth > 0) {
    admitted = std::min(queries.size(),
                        engines_.size() + options_.max_queue_depth);
  }
  for (size_t i = admitted; i < queries.size(); ++i) {
    responses[i].query_index = i;
    responses[i].served_via = ServedVia::kNone;
    responses[i].status = Status::ResourceExhausted(
        "route server saturated: query shed by admission control");
    admission_shed_->Increment();
    // Shed queries count against availability: the traveller asked and got
    // nothing, however deliberate the refusal.
    if (slo_) {
      slo_->Record({.latency_seconds = 0.0, .ok = false, .degraded = false,
                    .shed = true});
    }
  }

  if (admitted == 0) return responses;

  // Hand the admitted prefix to the shared queue and block until every
  // query of THIS call has an answer. The call's completion state lives on
  // this stack frame; workers hold pointers to it only while the frame is
  // pinned here.
  ServeCall call;
  const auto enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    call.remaining = admitted;
    for (size_t i = 0; i < admitted; ++i) {
      WorkItem item;
      item.query = &queries[i];
      item.out = &responses;
      item.index = i;
      item.region =
          regions_ != nullptr ? regions_->RegionOf(queries[i].source) : 0;
      item.enqueued = enqueued;
      item.call = &call;
      pending_.push_back(item);
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return call.remaining == 0; });
  }
  return responses;
}

bool RouteServer::ClaimBatch(std::unique_lock<std::mutex>& lock,
                             std::vector<WorkItem>* claimed,
                             uint64_t* batch_id) {
  // A traffic update owns the pool while updating_ is set: no new batch
  // may start until the stores and overlay republish.
  work_cv_.wait(lock,
                [&] { return stop_ || (!pending_.empty() && !updating_); });
  if (stop_) return false;

  // FIFO seed, then every pending query sharing its region, newest last —
  // region grouping reorders across dispatch calls, which is exactly the
  // locality win, while the FIFO seed bounds any query's queue delay.
  claimed->push_back(pending_.front());
  pending_.pop_front();
  // Counted active from seed claim to result delivery: a batch held open
  // for its window still blocks UpdateEdgeCost's quiescence wait.
  ++active_workers_;
  const uint64_t region = claimed->front().region;
  const size_t max_batch = std::max<size_t>(1, options_.max_batch);
  auto claim_matching = [&] {
    for (auto it = pending_.begin();
         it != pending_.end() && claimed->size() < max_batch;) {
      if (it->region == region) {
        claimed->push_back(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  };
  claim_matching();

  // Underfull batch: optionally hold it open for late same-region
  // arrivals, bounded by the seed's enqueue time plus the window. Other
  // workers keep draining other regions meanwhile.
  if (claimed->size() < max_batch && options_.batch_window_us > 0) {
    const auto hold_until =
        claimed->front().enqueued +
        std::chrono::microseconds(options_.batch_window_us);
    while (claimed->size() < max_batch && !stop_) {
      if (work_cv_.wait_until(lock, hold_until) ==
          std::cv_status::timeout) {
        claim_matching();
        break;
      }
      claim_matching();
    }
  }

  *batch_id = max_batch > 1 ? ++next_batch_id_ : 0;
  return true;
}

void RouteServer::WorkerLoop(size_t worker_id) {
  // Per-worker series are resolved once; the references stay valid for the
  // registry's lifetime.
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"worker", std::to_string(worker_id)}};
  obs::Counter& served =
      reg.GetCounter("atis_server_queries_total",
                     "Route queries served by the worker pool", labels);
  obs::Counter& failed =
      reg.GetCounter("atis_server_query_failures_total",
                     "Route queries that returned an error", labels);
  obs::Histogram& latency = reg.GetHistogram(
      "atis_server_query_latency_seconds",
      "Per-query wall time inside a worker",
      obs::Histogram::LatencyBounds(), labels);

  while (true) {
    std::vector<WorkItem> claimed;
    uint64_t batch_id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!ClaimBatch(lock, &claimed, &batch_id)) return;
    }

    // Singleflight plan: the first occurrence of each (source,
    // destination, algorithm, version) key computes; duplicates copy.
    std::vector<CoalesceKey> keys;
    keys.reserve(claimed.size());
    for (const WorkItem& item : claimed) {
      keys.push_back(CoalesceKey{item.query->source,
                                 item.query->destination,
                                 item.query->algorithm,
                                 item.query->version});
    }
    const std::vector<size_t> leaders = PlanCoalescing(keys);

    // Execute the batch sequentially through one shared context. With
    // batching off (batch_id == 0) the context stays unused and the loop
    // degenerates to the serial one-query-at-a-time path.
    BatchContext ctx(batch_id);
    BatchContext* ctx_ptr = batch_id != 0 ? &ctx : nullptr;
    std::vector<RouteResponse> resps(claimed.size());
    for (size_t i = 0; i < claimed.size(); ++i) {
      // leaders[i] <= i, so a follower's leader has already run.
      resps[i] = leaders[i] == i
                     ? RunOne(worker_id, claimed[i].index,
                              *claimed[i].query, ctx_ptr, batch_id)
                     : RunCoalesced(worker_id, claimed[i].index,
                                    *claimed[i].query, resps[leaders[i]],
                                    batch_id);
      served.Increment();
      if (!resps[i].status.ok()) failed.Increment();
      latency.Observe(resps[i].latency_seconds);
    }

    if (batch_id != 0) {
      batch_batches_->Increment();
      batch_members_->Increment(claimed.size());
      batch_adjacency_fetches_->Increment(ctx.stats().adjacency_fetches);
      batch_shared_hits_->Increment(ctx.stats().shared_adjacency_hits);
      batches_executed_.fetch_add(1, std::memory_order_relaxed);
      batch_members_executed_.fetch_add(claimed.size(),
                                        std::memory_order_relaxed);
      batch_fetches_.fetch_add(ctx.stats().adjacency_fetches,
                               std::memory_order_relaxed);
      batch_shared_.fetch_add(ctx.stats().shared_adjacency_hits,
                              std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < claimed.size(); ++i) {
        (*claimed[i].out)[claimed[i].index] = std::move(resps[i]);
        --claimed[i].call->remaining;
      }
      if (--active_workers_ == 0) update_cv_.notify_all();
    }
    done_cv_.notify_all();
  }
}

RouteResponse RouteServer::RunCoalesced(size_t worker_id,
                                        size_t query_index,
                                        const RouteQuery& q,
                                        const RouteResponse& leader,
                                        uint64_t batch_id) {
  const auto started = std::chrono::steady_clock::now();
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);
  resp.batch_id = batch_id;
  resp.coalesced = true;
  // The leader's answer, whatever its provenance — including a failure:
  // an identical query asked at the same instant fails the same way.
  resp.status = leader.status;
  resp.result = leader.result;
  resp.degraded = leader.degraded;
  resp.degraded_cause = leader.degraded_cause;
  resp.served_via =
      leader.status.ok() ? ServedVia::kCoalesced : ServedVia::kNone;
  // No search ran and no cache lookup happened for this member: io stays
  // zero and cache hit/miss accounting belongs to the leader alone.
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  batch_coalesced_->Increment();
  batch_coalesced_served_.fetch_add(1, std::memory_order_relaxed);

  if (slow_log_ != nullptr) {
    obs::SlowQueryLog::Record rec;
    rec.source = q.source;
    rec.destination = q.destination;
    rec.algorithm = std::string(AlgorithmName(q.algorithm));
    rec.latency_ms = resp.latency_seconds * 1000.0;
    rec.blocks_read = 0;
    rec.cache_hit = false;
    rec.degraded = resp.degraded;
    rec.served_via = ServedViaName(resp.served_via);
    rec.worker_id = resp.worker_id;
    rec.batch_id = batch_id;
    rec.coalesced = true;
    if (!resp.status.ok()) rec.status = resp.status.ToString();
    slow_log_->MaybeRecord(rec,
                           /*force=*/resp.degraded || !resp.status.ok());
  }
  if (slo_) {
    slo_->Record({.latency_seconds = resp.latency_seconds,
                  .ok = resp.status.ok(),
                  .degraded = resp.degraded,
                  .shed = false});
  }
  return resp;
}

Status RouteServer::UpdateEdgeCost(graph::NodeId u, graph::NodeId v,
                                   double cost) {
  ATIS_RETURN_NOT_OK(init_status_);

  // Quiesce the pool: serialize with other updaters, stall new batch
  // claims, and wait out in-flight batches. Workers resume only after the
  // stores, the overlay, and the cache all reflect the update, so no
  // search ever sees a half-applied metric or serves a stale overlay.
  std::unique_lock<std::mutex> lock(mu_);
  update_cv_.wait(lock, [&] { return !updating_; });
  updating_ = true;
  update_cv_.wait(lock, [&] { return active_workers_ == 0; });
  lock.unlock();

  Status applied = [&]() -> Status {
    // The effective metric is float-rounded by R's storage schema;
    // compare rounded values so an update that rounds to no-op (or a pure
    // increase) is classified by what searches will actually see.
    ATIS_ASSIGN_OR_RETURN(const double prior, snapshot_.EdgeCost(u, v));
    const double rounded = static_cast<double>(static_cast<float>(cost));
    const bool decrease = rounded < prior;

    for (auto& store : stores_) {
      ATIS_RETURN_NOT_OK(store->UpdateEdgeCost(u, v, cost));
    }
    // Keep the degraded-mode snapshot on the stores' float-rounded
    // metric.
    ATIS_RETURN_NOT_OK(
        snapshot_.SetEdgeCost(u, v, static_cast<float>(cost)));

    std::shared_ptr<const OverlayIndex> updated;
    if (overlay_ != nullptr) {
      // Incremental re-customization: a same-cell edge recomputes one
      // cell's tables, a cross-cell edge patches one node's cross arcs;
      // every untouched cell's tables are shared with the old snapshot.
      size_t cells_changed = 0;
      ATIS_ASSIGN_OR_RETURN(
          auto customization,
          RecustomizeForEdge(*overlay_->topology, *overlay_->customization,
                             u, v, stores_.front().get(), &cells_changed));
      updated = std::make_shared<const OverlayIndex>(
          OverlayIndex{overlay_->topology, std::move(customization)});
      for (auto& engine : engines_) {
        ATIS_RETURN_NOT_OK(engine->EnableOverlay(updated));
      }
      overlay_cells_recustomized_.fetch_add(cells_changed,
                                            std::memory_order_relaxed);
    }

    if (cache_) {
      if (!decrease && updated != nullptr) {
        // A pure increase cannot improve a route that avoids the edge, so
        // only cached paths through the edge's cells can be wrong — and
        // any such path visits u's (and v's) cell. Routes through
        // untouched regions stay warm.
        const int32_t cu = overlay_->topology->CellOf(u);
        const int32_t cv = overlay_->topology->CellOf(v);
        int32_t regions[2] = {std::min(cu, cv), std::max(cu, cv)};
        const size_t n = regions[0] == regions[1] ? 1 : 2;
        const size_t invalidated =
            cache_->InvalidateRegions({regions, regions + n});
        cache_region_invalidated_->Increment(invalidated);
      } else {
        // Decreases (or region-blind servers) fall back to the global
        // epoch bump: everything recomputes.
        cache_->BumpEpoch();
      }
    }

    // Publish the new index for /statusz readers under the same lock that
    // releases the workers.
    lock.lock();
    if (updated != nullptr) overlay_ = std::move(updated);
    lock.unlock();
    traffic_updates_applied_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }();

  lock.lock();
  updating_ = false;
  lock.unlock();
  work_cv_.notify_all();
  update_cv_.notify_all();
  return applied;
}

bool RouteServer::ServeDegraded(const RouteQuery& q,
                                const RouteCache::Key& key, Status cause,
                                RouteResponse* resp) {
  // Fallback 1: a cached route, even one invalidated by a traffic update.
  // A slightly-stale route is still drivable; the degraded flag tells the
  // traveller it predates the latest costs.
  if (cache_) {
    RouteCache::StaleLookupResult stale = cache_->LookupAllowStale(key);
    if (stale.result.has_value()) {
      resp->result = *std::move(stale.result);
      resp->degraded = true;
      resp->served_via = ServedVia::kStaleCache;
      resp->degraded_cause = std::move(cause);
      resp->status = Status::OK();
      degraded_stale_->Increment();
      return true;
    }
  }
  // Fallback 2: exact in-memory Dijkstra on the last-good snapshot. No
  // storage I/O, so neither faults nor a quarantined replica can touch
  // it; Dijkstra regardless of the requested algorithm because it is
  // optimal, estimator-free, and microseconds at ATIS map scale.
  PathResult mem = DijkstraSearch(snapshot_, q.source, q.destination);
  resp->result = std::move(mem);
  resp->degraded = true;
  resp->served_via = ServedVia::kSnapshot;
  resp->degraded_cause = std::move(cause);
  resp->status = Status::OK();
  degraded_snapshot_->Increment();
  return true;
}

std::vector<int32_t> RouteServer::PathRegions(
    const PathResult& result) const {
  std::vector<int32_t> regions;
  if (overlay_ == nullptr || !result.found) return regions;
  const OverlayTopology& topo = *overlay_->topology;
  regions.reserve(8);
  for (const graph::NodeId n : result.path) {
    const int32_t c = topo.CellOf(n);
    if (regions.empty() || regions.back() != c) regions.push_back(c);
  }
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()),
                regions.end());
  return regions;
}

std::shared_ptr<const OverlayIndex> RouteServer::overlay_index() {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_;
}

uint64_t RouteServer::overlay_metric_version() {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_ != nullptr ? overlay_->customization->metric_version()
                             : 0;
}

void RouteServer::RefreshObsGauges() {
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("atis_server_uptime_seconds",
               "Seconds since the route server finished construction")
      .Set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
               .count());
  if (slo_) slo_->PublishGauges(reg);
}

std::string RouteServer::StatuszJson() {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = pending_.size();
  }
  out << "{\"uptime_seconds\":" << uptime
      << ",\"num_workers\":" << engines_.size()
      << ",\"queue_depth\":" << queue_depth << ",\"build\":{\"layout\":\""
      << graph::StoreLayoutName(options_.layout)
      << "\",\"prefetch_depth\":" << options_.prefetch_depth
      << ",\"num_landmarks\":" << options_.num_landmarks
      << ",\"default_deadline_ms\":" << options_.default_deadline_ms
      << ",\"degraded_enabled\":"
      << (options_.enable_degraded ? "true" : "false") << "}";

  {
    const uint64_t batches =
        batches_executed_.load(std::memory_order_relaxed);
    const uint64_t members =
        batch_members_executed_.load(std::memory_order_relaxed);
    const uint64_t fetches = batch_fetches_.load(std::memory_order_relaxed);
    const uint64_t shared = batch_shared_.load(std::memory_order_relaxed);
    const uint64_t lookups = fetches + shared;
    out << ",\"batching\":{\"enabled\":"
        << (options_.max_batch > 1 ? "true" : "false")
        << ",\"max_batch\":" << options_.max_batch
        << ",\"window_us\":" << options_.batch_window_us
        << ",\"region_order\":" << options_.batch_region_order
        << ",\"batches\":" << batches << ",\"members\":" << members
        << ",\"avg_occupancy\":"
        << (batches > 0 ? static_cast<double>(members) /
                              static_cast<double>(batches)
                        : 0.0)
        << ",\"adjacency_fetches\":" << fetches
        << ",\"shared_adjacency_hits\":" << shared
        << ",\"shared_hit_ratio\":"
        << (lookups > 0 ? static_cast<double>(shared) /
                              static_cast<double>(lookups)
                        : 0.0)
        << ",\"coalesced\":"
        << batch_coalesced_served_.load(std::memory_order_relaxed) << "}";
  }

  out << ",\"workers\":[";
  for (size_t w = 0; w < breakers_.size(); ++w) {
    const CircuitBreaker::Stats bs = breakers_[w]->stats();
    out << (w == 0 ? "" : ",") << "{\"id\":" << w << ",\"breaker\":{"
        << "\"state\":\"" << CircuitBreakerStateName(breakers_[w]->state())
        << "\",\"opened\":" << bs.opened << ",\"probes\":" << bs.probes
        << ",\"rejected\":" << bs.rejected << "}}";
  }
  out << "]";

  if (cache_) {
    const RouteCache::Stats cs = cache_->stats();
    const uint64_t lookups = cs.hits + cs.misses;
    out << ",\"cache\":{\"size\":" << cache_->size()
        << ",\"epoch\":" << cache_->epoch() << ",\"hits\":" << cs.hits
        << ",\"misses\":" << cs.misses << ",\"hit_ratio\":"
        << (lookups > 0 ? static_cast<double>(cs.hits) /
                              static_cast<double>(lookups)
                        : 0.0)
        << ",\"stale_evictions\":" << cs.stale_evictions
        << ",\"stale_serves\":" << cs.stale_serves
        << ",\"region_invalidations\":" << cs.region_invalidations
        << ",\"region_entries_invalidated\":"
        << cs.region_entries_invalidated << "}";
  }

  {
    std::shared_ptr<const OverlayIndex> ov;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ov = overlay_;
    }
    if (ov != nullptr) {
      out << ",\"overlay\":{\"cell_order\":" << options_.overlay_cell_order
          << ",\"cells\":" << ov->topology->num_cells()
          << ",\"boundary_nodes\":" << ov->topology->num_boundary_nodes()
          << ",\"shortcuts\":" << ov->topology->num_shortcuts()
          << ",\"metric_version\":"
          << ov->customization->metric_version()
          << ",\"traffic_updates\":"
          << traffic_updates_applied_.load(std::memory_order_relaxed)
          << ",\"cells_recustomized\":"
          << overlay_cells_recustomized_.load(std::memory_order_relaxed)
          << "}";
    }
  }

  const storage::BufferPoolStats ps = pool_->stats();
  const uint64_t accesses = ps.hits + ps.misses;
  out << ",\"buffer_pool\":{\"hits\":" << ps.hits
      << ",\"misses\":" << ps.misses << ",\"hit_ratio\":"
      << (accesses > 0
              ? static_cast<double>(ps.hits) / static_cast<double>(accesses)
              : 0.0)
      << ",\"evictions\":" << ps.evictions
      << ",\"read_retries\":" << ps.read_retries
      << ",\"prefetch\":{\"issued\":" << ps.prefetch_issued
      << ",\"filled\":" << ps.prefetch_filled
      << ",\"useful\":" << ps.prefetch_useful
      << ",\"wasted\":" << ps.prefetch_wasted
      << ",\"dropped\":" << ps.prefetch_dropped << "}}";

  if (trace_ring_) {
    out << ",\"traces\":{\"directory\":\""
        << obs::EscapeJson(trace_ring_->directory())
        << "\",\"appended\":" << trace_ring_->appended()
        << ",\"capacity\":" << trace_ring_->capacity()
        << ",\"sample_every\":" << options_.obs.sample_every << "}";
  }
  if (slow_log_) {
    out << ",\"slow_query_log\":{\"path\":\""
        << obs::EscapeJson(slow_log_->path())
        << "\",\"threshold_ms\":" << slow_log_->threshold_ms()
        << ",\"records\":" << slow_log_->records_written() << "}";
  }
  if (slo_) {
    out << ",\"slo\":{\"availability_target\":"
        << slo_->availability_target() << ",\"windows\":[";
    bool first = true;
    for (const obs::SloWindows::Window& w : slo_->Snapshot()) {
      out << (first ? "" : ",") << "{\"window\":\"" << w.name
          << "\",\"total\":" << w.total << ",\"errors\":" << w.errors
          << ",\"degraded\":" << w.degraded << ",\"shed\":" << w.shed
          << ",\"qps\":" << w.qps << ",\"availability\":" << w.availability
          // An infinite burn (target == 1.0) has no JSON spelling; clamp.
          << ",\"burn_rate\":"
          << (std::isfinite(w.burn_rate) ? w.burn_rate : 1e12)
          << ",\"p50_ms\":" << w.p50_seconds * 1000.0
          << ",\"p95_ms\":" << w.p95_seconds * 1000.0
          << ",\"p99_ms\":" << w.p99_seconds * 1000.0 << "}";
      first = false;
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

RouteResponse RouteServer::RunOne(size_t worker_id, size_t query_index,
                                  const RouteQuery& q, BatchContext* batch,
                                  uint64_t batch_id) {
  RouteResponse resp;
  resp.query_index = query_index;
  resp.worker_id = static_cast<int>(worker_id);
  resp.batch_id = batch_id;

  const auto started = std::chrono::steady_clock::now();
  const uint64_t deadline_ms =
      q.deadline_ms != 0 ? q.deadline_ms : options_.default_deadline_ms;
  const Deadline deadline =
      deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms) : Deadline();

  // Mirror every block this thread touches into resp.io: exact per-query
  // accounting even though the disk (and its meter) are shared. The scope
  // covers the whole query so a sampled tracer reading &resp.io sees a
  // monotone per-thread counter and every span delta stays non-negative.
  storage::IoMeter::ScopedThreadCounters io_scope(&resp.io);

  // When sampling is configured every query runs traced — the span
  // bookkeeping is pointer bumps next to metered block reads — but only
  // head-sampled, slow, degraded, or errored trees reach the ring. (A
  // trace cannot be begun retroactively once the query turns out slow.)
  const bool head_sampled = sampler_ != nullptr && sampler_->Sample();
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::Tracer::InstallScope> install;
  obs::TraceSpan* root = nullptr;
  if (sampler_ != nullptr) {
    tracer = std::make_unique<obs::Tracer>(&resp.io);
    install = std::make_unique<obs::Tracer::InstallScope>(tracer.get());
    root = tracer->BeginSpan("query", "query");
    root->Tag("worker", std::to_string(worker_id));
    root->Tag("source", std::to_string(q.source));
    root->Tag("destination", std::to_string(q.destination));
    root->Tag("algorithm", std::string(AlgorithmName(q.algorithm)));
    if (batch_id != 0) {
      root->Tag("batch", std::to_string(batch_id));
      root->Tag("coalesced", "0");  // followers never reach RunOne
    }
  }

  const RouteCache::Key key{q.source, q.destination, q.algorithm, q.version};
  uint64_t observed_epoch = 0;
  uint64_t observed_seq = 0;
  bool answered_from_cache = false;
  if (cache_) {
    observed_epoch = cache_->epoch();
    observed_seq = cache_->invalidation_seq();
    // A degraded-capable server keeps stale entries around (miss, no
    // eviction): they are the first fallback when this recompute fails,
    // and a successful Insert overwrites them anyway.
    RouteCache::LookupResult cached =
        cache_->Lookup(key, /*evict_stale=*/!options_.enable_degraded);
    if (cached.stale_evicted) cache_stale_->Increment();
    if (cached.result.has_value()) {
      cache_hits_->Increment();
      resp.cache_hit = true;
      resp.served_via = ServedVia::kCache;
      resp.result = *std::move(cached.result);
      answered_from_cache = true;
    } else {
      cache_misses_->Increment();
    }
  }

  if (!answered_from_cache) {
    CircuitBreaker& breaker = *breakers_[worker_id];
    const bool admitted = breaker.AllowRequest();
    Result<PathResult> r = [&]() -> Result<PathResult> {
      if (!admitted) {
        return Status::Unavailable("replica quarantined by circuit breaker");
      }
      DbSearchEngine& engine = *engines_[worker_id];
      switch (q.algorithm) {
        case Algorithm::kIterative:
          return engine.Iterative(q.source, q.destination, deadline, batch);
        case Algorithm::kDijkstra:
          return engine.Dijkstra(q.source, q.destination, deadline, batch);
        case Algorithm::kAStar:
          return engine.AStar(q.source, q.destination, q.version, deadline,
                              batch);
      }
      return Status::InvalidArgument("unknown algorithm");
    }();
    if (!admitted) {
      breaker_rejections_->Increment();
    } else if (r.ok()) {
      // Feed the breaker storage health only: faults extend the streak, a
      // completed search resets it, and a deadline expiry says nothing
      // about the replica (slow != broken), so it leaves the streak alone.
      breaker.RecordSuccess();
    } else if (r.status().IsDeadlineExceeded()) {
      deadline_exceeded_->Increment();
    } else {
      if (breaker.RecordFailure()) breaker_opened_->Increment();
    }

    if (r.ok()) {
      resp.result = std::move(r).value();
      // Cache successful answers (including proven "no route"); the insert
      // is dropped inside the cache when a traffic update — epoch bump or
      // region invalidation — raced this query.
      if (cache_) {
        cache_->Insert(key, observed_epoch, resp.result,
                       PathRegions(resp.result), observed_seq);
      }
    } else if (!options_.enable_degraded ||
               !ServeDegraded(q, key, r.status(), &resp)) {
      resp.status = r.status();
      resp.served_via = ServedVia::kNone;
    }
  }
  resp.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  // Observability epilogue: classify the finished query, then persist /
  // log / record. File writes happen only for sampled or slow queries, so
  // the common path adds a histogram increment and a mutexed O(1) SLO add.
  if (root != nullptr) {
    root->Tag("served_via", ServedViaName(resp.served_via));
    if (!resp.status.ok()) root->Tag("error", resp.status.ToString());
    tracer->EndSpan(root);
    install.reset();  // uninstall before any further work on this thread
  }
  const double latency_ms = resp.latency_seconds * 1000.0;
  const bool slow =
      slow_log_ != nullptr && latency_ms >= slow_log_->threshold_ms();
  if (slow) slow_queries_->Increment();
  bool trace_persisted = false;
  if (tracer != nullptr &&
      (head_sampled || slow || resp.degraded || !resp.status.ok())) {
    std::string label = std::string(AlgorithmName(q.algorithm)) + " " +
                        std::to_string(q.source) + "->" +
                        std::to_string(q.destination) + " via " +
                        ServedViaName(resp.served_via);
    trace_persisted = trace_ring_->Append(*tracer, label).ok();
    if (trace_persisted) traces_sampled_->Increment();
  }
  if (slow_log_ != nullptr) {
    obs::SlowQueryLog::Record rec;
    rec.source = q.source;
    rec.destination = q.destination;
    rec.algorithm = std::string(AlgorithmName(q.algorithm));
    rec.latency_ms = latency_ms;
    rec.blocks_read = resp.io.blocks_read;
    rec.cache_hit = resp.cache_hit;
    rec.degraded = resp.degraded;
    rec.served_via = ServedViaName(resp.served_via);
    rec.has_deadline = deadline.active();
    if (rec.has_deadline) {
      rec.deadline_remaining_ms = deadline.remaining_seconds() * 1000.0;
    }
    rec.worker_id = resp.worker_id;
    rec.batch_id = batch_id;
    rec.coalesced = false;
    if (!resp.status.ok()) rec.status = resp.status.ToString();
    rec.sampled = trace_persisted;
    // Degraded / errored queries are logged regardless of latency — the
    // log is the serving-path incident record, not just a latency outlier
    // list.
    slow_log_->MaybeRecord(rec,
                           /*force=*/resp.degraded || !resp.status.ok());
  }
  if (slo_) {
    slo_->Record({.latency_seconds = resp.latency_seconds,
                  .ok = resp.status.ok(),
                  .degraded = resp.degraded,
                  .shed = false});
  }
  return resp;
}

}  // namespace atis::core
