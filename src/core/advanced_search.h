// Extensions beyond the paper's three algorithms, rooted in its closing
// discussion.
//
// Section 6: "In real applications such as the ATIS, the tradeoff between
// optimality and speed may allow for sub-optimal algorithms to speed the
// processing. Our future work will include analyzing the algorithms to
// find a way to characterize the tradeoff." Weighted A* *is* that
// characterisation: inflating an admissible estimator by w >= 1 bounds
// the returned cost at w times optimal while shrinking the search.
// Bidirectional Dijkstra is the complementary exact speedup for
// single-pair queries without any estimator.
#pragma once

#include "core/estimator.h"
#include "core/memory_search.h"
#include "core/search_types.h"
#include "graph/graph.h"

namespace atis::core {

/// A* with the estimator inflated by `weight` (>= 1). With an admissible
/// estimator the returned path costs at most weight * optimal
/// (epsilon-admissibility); weight = 1 is plain A*, larger weights search
/// more greedily. PathResult::optimality_guaranteed is true only for
/// weight == 1 with a known-admissible estimator.
PathResult WeightedAStarSearch(const graph::Graph& g, graph::NodeId source,
                               graph::NodeId destination,
                               const Estimator& estimator, double weight,
                               const MemorySearchOptions& options = {});

/// Bidirectional Dijkstra: alternating forward search from the source and
/// backward search (over reversed edges) from the destination, stopping
/// when the frontiers' radii cover the best meeting point. Exact, and on
/// long queries expands roughly half the nodes of unidirectional
/// Dijkstra. `reverse` must be ReverseOf(g) (precomputed so repeated
/// queries share it); iterations count expansions in both directions.
PathResult BidirectionalDijkstra(const graph::Graph& g,
                                 const graph::Graph& reverse,
                                 graph::NodeId source,
                                 graph::NodeId destination);

/// Convenience overload that builds the reverse graph internally.
PathResult BidirectionalDijkstra(const graph::Graph& g,
                                 graph::NodeId source,
                                 graph::NodeId destination);

/// The transpose graph: same nodes/coordinates, every edge u->v becomes
/// v->u with the same cost.
graph::Graph ReverseOf(const graph::Graph& g);

}  // namespace atis::core
