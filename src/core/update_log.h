// Write-ahead log of edge-cost updates — the durable half of the traffic
// ingestion write path (file format ATISW1).
//
// Layout: an 8-byte header magic, then a sequence of batch frames
//
//   u32 frame magic | u64 batch seq | u32 record count |
//   count x { i32 u | i32 v | f64 cost } | u32 CRC-32
//
// with the checksum covering everything from the sequence number through
// the last record (host little-endian; the log is machine-local state,
// not an interchange format). A batch is COMMITTED once its frame is
// fully appended and fsync'd — Append returns only after the sync, so a
// batch acknowledged to the caller survives any later crash.
//
// Torn-tail tolerance: a crash mid-append leaves a partial frame (or a
// frame whose checksum does not match) at the end of the file. Replay
// stops at the first invalid frame and reports the prefix; Open truncates
// that tail so the next append starts on a clean boundary. Everything
// before the tear is intact — frames are append-only and never rewritten.
//
// I/O flows through storage::DurableFile, so appends are metered on the
// owning DiskManager in block units and chaos-testable through
// FaultProfile's write/fsync rates: a failed append writes nothing, is
// not metered, and leaves the log exactly as it was.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "graph/graph.h"
#include "storage/durable_file.h"
#include "util/status.h"

namespace atis::core {

/// One traffic-sensor reading: the new absolute cost of edge u -> v.
struct EdgeCostUpdate {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  double cost = 0.0;
};

class UpdateLog {
 public:
  struct Options {
    std::string path;
    /// Meters appends/replays and injects write/fsync faults; may be null.
    storage::DiskManager* disk = nullptr;
    /// fsync after every frame (the commit point). Turning this off
    /// trades the durability guarantee for append throughput — only the
    /// chaos bench does, to isolate fsync cost.
    bool sync_on_commit = true;
  };

  /// What a replay (or Open's recovery scan) found.
  struct ReplayStats {
    uint64_t batches = 0;       ///< committed frames seen
    uint64_t records = 0;       ///< updates across those frames
    uint64_t last_seq = 0;      ///< highest committed sequence number
    uint64_t valid_bytes = 0;   ///< file offset after the last valid frame
    bool torn_tail = false;     ///< bytes past valid_bytes were discarded
  };

  using ReplayFn =
      std::function<Status(uint64_t seq, std::span<const EdgeCostUpdate>)>;

  /// Replays every committed frame with seq > `after_seq`, in order. A
  /// missing file replays as empty (a server's first boot has no log).
  /// Stops cleanly at a torn tail; a file that is not an ATISW1 log at
  /// all is Corruption. Scanned bytes are metered as block reads on
  /// `disk` when given.
  static Result<ReplayStats> Replay(const std::string& path,
                                    storage::DiskManager* disk,
                                    uint64_t after_seq,
                                    const ReplayFn& apply);

  /// Opens (or creates) the log for appending: scans for the valid
  /// prefix, truncates any torn tail, and positions at the end.
  /// recovery() reports what the scan found; last_seq() seeds the next
  /// batch's sequence number.
  static Result<std::unique_ptr<UpdateLog>> Open(Options options);

  /// Appends one committed batch frame (fsync'd when sync_on_commit).
  /// `seq` must increase across appends. On failure the log is unchanged
  /// and unmetered — the caller must not apply the batch. One exception:
  /// if a failed commit's rollback truncate ALSO fails, a maybe-durable
  /// ghost frame may survive in the file, and the log poisons itself —
  /// every further Append is refused (see poison_status()) so no retry
  /// can reuse the ghost's sequence number with different contents.
  /// Reopening the path recovers: the scan treats a surviving ghost as
  /// committed and sequences continue past it.
  Status Append(std::span<const EdgeCostUpdate> updates, uint64_t seq);

  /// OK normally; the permanent refusal reason after a failed-commit
  /// rollback could not restore the log's tail.
  const Status& poison_status() const { return poisoned_; }

  /// Truncates back to an empty log (header only) after a checkpoint has
  /// made the frames redundant. Sequence numbers keep counting — replay
  /// skips frames at or below the checkpoint's seq anyway.
  Status Reset();

  const std::string& path() const { return options_.path; }
  uint64_t last_seq() const { return last_seq_; }
  const ReplayStats& recovery() const { return recovery_; }
  uint64_t appended_batches() const { return appended_batches_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t sync_commits() const { return sync_commits_; }

 private:
  UpdateLog(Options options, std::unique_ptr<storage::DurableFile> file,
            ReplayStats recovery)
      : options_(std::move(options)),
        file_(std::move(file)),
        recovery_(recovery),
        last_seq_(recovery.last_seq) {}

  Options options_;
  std::unique_ptr<storage::DurableFile> file_;
  ReplayStats recovery_;
  Status poisoned_;  ///< non-OK: ghost frame on disk, appends refused
  uint64_t last_seq_ = 0;
  uint64_t appended_batches_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t sync_commits_ = 0;
};

}  // namespace atis::core
