#include "core/search_types.h"

namespace atis::core {

std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kIterative:
      return "iterative";
    case Algorithm::kDijkstra:
      return "dijkstra";
    case Algorithm::kAStar:
      return "a-star";
  }
  return "?";
}

std::string_view DuplicatePolicyName(DuplicatePolicy p) {
  switch (p) {
    case DuplicatePolicy::kAvoid:
      return "avoid";
    case DuplicatePolicy::kEliminate:
      return "eliminate";
    case DuplicatePolicy::kAllow:
      return "allow";
  }
  return "?";
}

}  // namespace atis::core
