#include "core/landmarks.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/advanced_search.h"
#include "core/sssp.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"

namespace atis::core {

using graph::Graph;
using graph::NodeId;
using graph::RelationalGraphStore;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class LandmarkEstimator final : public Estimator {
 public:
  LandmarkEstimator(std::shared_ptr<const LandmarkSet> set,
                    double euclidean_scale)
      : set_(std::move(set)), euclidean_scale_(euclidean_scale) {}

  double Estimate(const graph::Point& a,
                  const graph::Point& b) const override {
    // Coordinate-only callers get just the geometric component (zero when
    // disabled) — a weaker but still valid lower bound.
    return euclidean_scale_ <= 0.0
               ? 0.0
               : euclidean_scale_ * std::hypot(a.x - b.x, a.y - b.y);
  }

  double EstimateNodes(NodeId from, const graph::Point& from_pt, NodeId to,
                       const graph::Point& to_pt) const override {
    return std::max(set_->LowerBound(from, to), Estimate(from_pt, to_pt));
  }

  EstimatorKind kind() const override { return EstimatorKind::kLandmark; }

 private:
  std::shared_ptr<const LandmarkSet> set_;
  double euclidean_scale_;
};

}  // namespace

double LandmarkSet::LowerBound(NodeId from, NodeId to) const {
  if (from == to) return 0.0;
  double bound = 0.0;
  for (size_t l = 0; l < landmarks_.size(); ++l) {
    const double lf = DistFrom(l, from);  // d(l -> n)
    const double lt = DistFrom(l, to);    // d(l -> t)
    const double fl = DistTo(l, from);    // d(n -> l)
    const double tl = DistTo(l, to);      // d(t -> l)
    // d(l,t) - d(l,n) is valid whenever d(l,n) is finite: if d(l,t) is
    // +inf too, l reaches n but not t, so n cannot reach t either and +inf
    // is the exact answer. Symmetrically for the backward column.
    if (lf != kInf && lt - lf > bound) bound = lt - lf;
    if (tl != kInf && fl - tl > bound) bound = fl - tl;
  }
  return bound;
}

std::vector<RelationalGraphStore::LandmarkDistRow> LandmarkSet::ToRows()
    const {
  std::vector<RelationalGraphStore::LandmarkDistRow> rows;
  rows.reserve(num_landmarks() * num_nodes());
  for (size_t l = 0; l < num_landmarks(); ++l) {
    for (size_t v = 0; v < num_nodes(); ++v) {
      RelationalGraphStore::LandmarkDistRow row;
      row.ord = static_cast<int32_t>(l);
      row.landmark = landmarks_[l];
      row.node = static_cast<NodeId>(v);
      row.dist_from = dist_from_[l][v];
      row.dist_to = dist_to_[l][v];
      rows.push_back(row);
    }
  }
  return rows;
}

Result<LandmarkSet> LandmarkSet::FromRows(
    const std::vector<RelationalGraphStore::LandmarkDistRow>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("empty landmarkDist rows");
  }
  int32_t max_ord = 0;
  NodeId max_node = 0;
  for (const auto& row : rows) {
    max_ord = std::max(max_ord, row.ord);
    max_node = std::max(max_node, row.node);
    if (row.ord < 0 || row.node < 0) {
      return Status::InvalidArgument("negative landmarkDist key");
    }
  }
  const size_t k = static_cast<size_t>(max_ord) + 1;
  const size_t n = static_cast<size_t>(max_node) + 1;
  if (rows.size() != k * n) {
    return Status::InvalidArgument("ragged landmarkDist table");
  }
  std::vector<NodeId> landmarks(k, graph::kInvalidNode);
  std::vector<std::vector<double>> from(k, std::vector<double>(n, kInf));
  std::vector<std::vector<double>> to(k, std::vector<double>(n, kInf));
  for (const auto& row : rows) {
    const size_t l = static_cast<size_t>(row.ord);
    landmarks[l] = row.landmark;
    from[l][static_cast<size_t>(row.node)] = row.dist_from;
    to[l][static_cast<size_t>(row.node)] = row.dist_to;
  }
  return LandmarkSet(std::move(landmarks), std::move(from), std::move(to));
}

graph::Graph WithStoredEdgeCosts(const Graph& g) {
  Graph rounded;
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    const graph::Point& p = g.point(u);
    rounded.AddNode(p.x, p.y);
  }
  for (NodeId u = 0; u < static_cast<NodeId>(g.num_nodes()); ++u) {
    for (const graph::Edge& e : g.Neighbors(u)) {
      (void)rounded.AddEdge(
          u, e.to, static_cast<double>(static_cast<float>(e.cost)));
    }
  }
  return rounded;
}

Result<LandmarkSet> SelectLandmarks(const Graph& g,
                                    const LandmarkOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot select landmarks of empty graph");
  }
  if (!g.HasNode(options.seed_node)) {
    return Status::InvalidArgument("landmark seed node not in graph");
  }
  const auto started = std::chrono::steady_clock::now();
  const size_t k =
      std::max<size_t>(1, std::min(options.num_landmarks, g.num_nodes()));

  // Farthest node from the seed (ties to the smaller id) starts the set;
  // the seed itself is the fallback on a graph with no reachable pairs.
  ATIS_ASSIGN_OR_RETURN(auto seed_tree,
                        SingleSourceDijkstra(g, options.seed_node));
  NodeId first = options.seed_node;
  double best = -1.0;
  for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
    const double d = seed_tree.Distance(v);
    if (d != kInf && d > best) {
      best = d;
      first = v;
    }
  }

  std::vector<NodeId> landmarks{first};
  std::vector<std::vector<double>> dist_from;
  ATIS_ASSIGN_OR_RETURN(auto first_tree, SingleSourceDijkstra(g, first));
  dist_from.push_back(first_tree.distances());

  // min_dist[v]: distance from the chosen set; each new landmark
  // maximises it (greedy farthest-point sampling).
  std::vector<double> min_dist = dist_from.front();
  while (landmarks.size() < k) {
    NodeId next = graph::kInvalidNode;
    double far = 0.0;
    for (NodeId v = 0; v < static_cast<NodeId>(g.num_nodes()); ++v) {
      const double d = min_dist[static_cast<size_t>(v)];
      if (d == kInf || d <= far) continue;
      far = d;
      next = v;
    }
    if (next == graph::kInvalidNode) break;  // no spread left
    ATIS_ASSIGN_OR_RETURN(auto tree, SingleSourceDijkstra(g, next));
    landmarks.push_back(next);
    dist_from.push_back(tree.distances());
    for (size_t v = 0; v < min_dist.size(); ++v) {
      min_dist[v] = std::min(min_dist[v], dist_from.back()[v]);
    }
  }

  // Backward columns d(v -> l) = forward distances on the reverse graph.
  const Graph rev = ReverseOf(g);
  std::vector<std::vector<double>> dist_to;
  dist_to.reserve(landmarks.size());
  for (const NodeId l : landmarks) {
    ATIS_ASSIGN_OR_RETURN(auto tree, SingleSourceDijkstra(rev, l));
    dist_to.push_back(tree.distances());
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  obs::MetricsRegistry::Default()
      .GetGauge("atis_landmark_select_seconds",
                "Wall time of the latest landmark selection (SSSP runs)")
      .Set(seconds);
  return LandmarkSet(std::move(landmarks), std::move(dist_from),
                     std::move(dist_to));
}

Result<LandmarkSet> RecomputeLandmarks(const std::vector<NodeId>& landmarks,
                                       const Graph& g) {
  if (landmarks.empty()) {
    return Status::InvalidArgument("no landmarks to recompute");
  }
  std::vector<std::vector<double>> dist_from;
  dist_from.reserve(landmarks.size());
  for (const NodeId l : landmarks) {
    if (!g.HasNode(l)) {
      return Status::InvalidArgument("landmark node not in graph");
    }
    ATIS_ASSIGN_OR_RETURN(auto tree, SingleSourceDijkstra(g, l));
    dist_from.push_back(tree.distances());
  }
  const Graph rev = ReverseOf(g);
  std::vector<std::vector<double>> dist_to;
  dist_to.reserve(landmarks.size());
  for (const NodeId l : landmarks) {
    ATIS_ASSIGN_OR_RETURN(auto tree, SingleSourceDijkstra(rev, l));
    dist_to.push_back(tree.distances());
  }
  return LandmarkSet(landmarks, std::move(dist_from), std::move(dist_to));
}

std::unique_ptr<Estimator> MakeLandmarkEstimator(
    std::shared_ptr<const LandmarkSet> set, double euclidean_scale) {
  if (set == nullptr) return nullptr;
  return std::make_unique<LandmarkEstimator>(std::move(set),
                                             euclidean_scale);
}

Result<std::shared_ptr<const LandmarkSet>> PersistAndLoadLandmarks(
    const LandmarkSet& set, RelationalGraphStore* store) {
  storage::IoMeter& meter =
      store->node_relation().pool()->disk()->meter();
  const storage::IoCounters before = meter.counters();
  const auto started = std::chrono::steady_clock::now();

  ATIS_RETURN_NOT_OK(store->StoreLandmarkDistances(set.ToRows()));
  ATIS_ASSIGN_OR_RETURN(auto rows, store->LoadLandmarkDistances());
  ATIS_ASSIGN_OR_RETURN(LandmarkSet loaded, LandmarkSet::FromRows(rows));

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  const storage::IoCounters delta = meter.counters() - before;
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("atis_landmark_count",
               "Landmarks in the most recently installed ALT table")
      .Set(static_cast<double>(set.num_landmarks()));
  reg.GetGauge("atis_landmark_preprocess_seconds",
               "Wall time of the latest landmarkDist persist + load")
      .Set(seconds);
  reg.GetCounter("atis_landmark_preprocess_blocks_read_total",
                 "Blocks read persisting/loading landmarkDist relations")
      .Increment(delta.blocks_read);
  reg.GetCounter("atis_landmark_preprocess_blocks_written_total",
                 "Blocks written persisting/loading landmarkDist relations")
      .Increment(delta.blocks_written);
  return std::make_shared<const LandmarkSet>(std::move(loaded));
}

}  // namespace atis::core
