// Small statistics accumulators used by benchmarks and experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace atis {

/// Percentile over already-sorted samples with linear interpolation
/// between closest ranks; `p` in [0, 100]. Returns 0 when empty.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

/// Same over unsorted input (sorts a copy, so caller order is preserved).
inline double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

/// Online accumulator for count / mean / min / max / variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() { *this = RunningStats(); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples and answers percentile queries. Used for latency-style
/// summaries in the benchmark harness.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// p in [0, 100], linear interpolation between closest ranks. Returns 0
  /// when empty.
  double Percentile(double p) {
    EnsureSorted();
    return PercentileSorted(samples_, p);
  }

  double Median() { return Percentile(50.0); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  void Reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace atis
