// Crash-safe whole-file replacement: write to a temporary sibling,
// fsync it, rename() over the destination, then fsync the parent
// directory. POSIX rename is atomic within a filesystem, so a reader (or
// a crash at any instant) sees either the old complete file or the new
// complete file — never a torn mixture — and the two fsyncs make the
// replacement durable: once WriteFileAtomic returns OK the new content
// survives power loss, not just process death (checkpoint writers rely
// on this before truncating the WAL frames a checkpoint supersedes).
// Every persistent-format writer in the repo (ATISG1/ATISG2 graph files,
// ATISO1 overlay files, WAL checkpoints) funnels through here.
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace atis {

/// Atomically replaces `path` with `content`. The temporary file is
/// `path` + ".tmp.<pid>"; on any failure it is unlinked and the previous
/// `path` (if any) is left untouched.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// Test-only crash simulation for WriteFileAtomic. While a scope is
/// alive, the selected stage fails (and for kBeforeRename the temporary
/// file is deliberately left behind, as a crash would leave it): tests
/// assert the destination survives intact either way.
class ScopedAtomicWriteFailure {
 public:
  enum Stage {
    kNone = 0,
    kDuringWrite,   ///< the payload write fails mid-stream
    kBeforeRename,  ///< "crash" after the tmp file is complete
  };
  explicit ScopedAtomicWriteFailure(Stage stage);
  ~ScopedAtomicWriteFailure();
  ScopedAtomicWriteFailure(const ScopedAtomicWriteFailure&) = delete;
  ScopedAtomicWriteFailure& operator=(const ScopedAtomicWriteFailure&) =
      delete;

 private:
  Stage previous_;
};

}  // namespace atis
