// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every WAL frame. Table-driven, one byte per step; the table is
// built once at static initialization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace atis {

namespace internal {
inline constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

/// CRC-32 of `n` bytes, continuing from `seed` (pass the previous return
/// value to checksum discontiguous regions as one stream).
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace atis
