// Per-query deadline: a wall-clock point in time checked cooperatively by
// long-running loops (the database-resident search expansions, the route
// server's workers). A default-constructed Deadline never expires, so
// paper-mode callers pass one through unchanged and pay a single branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace atis {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires.
  Deadline() = default;

  /// Expires `seconds` from now.
  static Deadline After(double seconds) {
    Deadline d;
    d.active_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// Expires `ms` milliseconds from now.
  static Deadline AfterMillis(uint64_t ms) {
    return After(static_cast<double>(ms) / 1e3);
  }

  bool active() const { return active_; }

  bool expired() const { return active_ && Clock::now() >= at_; }

  /// Seconds until expiry (negative once expired); +inf when inactive.
  double remaining_seconds() const {
    if (!active_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  bool active_ = false;
  Clock::time_point at_{};
};

}  // namespace atis
