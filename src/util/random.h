// Deterministic random number generation. Every experiment in this repo is
// seeded, so all workloads (edge-cost perturbations, synthetic maps, random
// node pairs) are bit-for-bit reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace atis {

/// SplitMix64: used to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, though the methods below are preferred for
/// cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Deterministic across platforms.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace atis
