// Status / Result error-handling primitives for the ATIS path-computation
// library. No exceptions cross public API boundaries; fallible operations
// return a Status (or a Result<T> when they produce a value).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace atis {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,       ///< transient failure; retrying may succeed
  kDeadlineExceeded,  ///< the operation ran past its deadline
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: parses a stable code name back to its
/// code. Empty for unrecognised names (round-trip tested for every code).
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Lightweight success/error value. Cheap to copy on the OK path (no
/// allocation); error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// True for failures a storage retry/fallback policy may treat as
  /// recoverable: kUnavailable is transient by definition; kInternal is the
  /// metered disk's permanent-device-failure code, recoverable only by
  /// routing around the device (circuit breaker / degraded answer), never
  /// by same-device retry.
  bool IsTransientStorageFault() const {
    return code_ == StatusCode::kUnavailable;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, analogous to arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression, RocksDB/Arrow style:
//   ATIS_RETURN_NOT_OK(file.Read(...));
#define ATIS_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::atis::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

// Assigns the value of a Result expression or propagates its error:
//   ATIS_ASSIGN_OR_RETURN(auto page, pool.Fetch(id));
#define ATIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define ATIS_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define ATIS_ASSIGN_OR_RETURN_CONCAT(a, b) ATIS_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define ATIS_ASSIGN_OR_RETURN(lhs, expr) \
  ATIS_ASSIGN_OR_RETURN_IMPL(            \
      ATIS_ASSIGN_OR_RETURN_CONCAT(_atis_result_, __LINE__), lhs, expr)

}  // namespace atis
