#include "util/status.h"

namespace atis {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kCorruption,
      StatusCode::kResourceExhausted,
      StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : kAll) {
    if (StatusCodeToString(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace atis
