#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace atis {

namespace {
/// Process-wide injected failure stage (tests are single-threaded around
/// save paths; a plain variable keeps the hot path free of atomics).
ScopedAtomicWriteFailure::Stage g_fail_stage =
    ScopedAtomicWriteFailure::kNone;

Status WriteAll(int fd, const char* data, size_t n, const std::string& tmp) {
  size_t written = 0;
  while (written < n) {
    const ssize_t w = ::write(fd, data + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      return Status::Unavailable("short write to " + tmp + ": " +
                                 std::strerror(err));
    }
    written += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// fsync the directory containing `path` so the rename (or create) of an
/// entry inside it is itself durable — without this, a power loss after
/// rename can roll the directory back to the old entry, or worse, to a
/// state where the new entry exists but points at unsynced data.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Unavailable("cannot open directory " + dir + ": " +
                               std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    const int err = errno;
    ::close(dfd);
    return Status::Unavailable("fsync of directory " + dir + " failed: " +
                               std::strerror(err));
  }
  ::close(dfd);
  return Status::OK();
}

}  // namespace

ScopedAtomicWriteFailure::ScopedAtomicWriteFailure(Stage stage)
    : previous_(g_fail_stage) {
  g_fail_stage = stage;
}

ScopedAtomicWriteFailure::~ScopedAtomicWriteFailure() {
  g_fail_stage = previous_;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open " + tmp + " for writing: " +
                               std::strerror(errno));
  }
  if (g_fail_stage == ScopedAtomicWriteFailure::kDuringWrite) {
    // Simulated mid-write failure: some prefix may have reached the tmp
    // file, exactly as a full disk or crash would leave it.
    (void)WriteAll(fd, content.data(), content.size() / 2, tmp);
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Unavailable("short write to " + tmp + " (injected)");
  }
  if (Status st = WriteAll(fd, content.data(), content.size(), tmp);
      !st.ok()) {
    ::close(fd);
    std::remove(tmp.c_str());
    return st;
  }
  // The rename below only makes the REPLACEMENT atomic; durability needs
  // the payload on disk first. Without this fsync a power loss after the
  // rename can leave `path` pointing at an empty or partial file — fatal
  // for checkpoint writers that truncate a WAL right after a "successful"
  // save.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Unavailable("fsync of " + tmp + " failed: " +
                               std::strerror(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Unavailable("close of " + tmp + " failed: " +
                               std::strerror(err));
  }
  if (g_fail_stage == ScopedAtomicWriteFailure::kBeforeRename) {
    // Simulated crash between write and rename: the complete tmp file
    // stays behind (recovery rejects '.tmp.' names and unlinks them) and
    // the destination is intact.
    return Status::Unavailable("crash before rename of " + tmp +
                               " (injected)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename " + tmp + " to " + path +
                               ": " + std::strerror(err));
  }
  // And the directory entry itself: rename is only durable once the
  // parent directory has been synced.
  return SyncParentDir(path);
}

}  // namespace atis
