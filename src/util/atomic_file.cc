#include "util/atomic_file.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace atis {

namespace {
/// Process-wide injected failure stage (tests are single-threaded around
/// save paths; a plain variable keeps the hot path free of atomics).
ScopedAtomicWriteFailure::Stage g_fail_stage =
    ScopedAtomicWriteFailure::kNone;
}  // namespace

ScopedAtomicWriteFailure::ScopedAtomicWriteFailure(Stage stage)
    : previous_(g_fail_stage) {
  g_fail_stage = stage;
}

ScopedAtomicWriteFailure::~ScopedAtomicWriteFailure() {
  g_fail_stage = previous_;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open " + tmp + " for writing");
    }
    if (g_fail_stage == ScopedAtomicWriteFailure::kDuringWrite) {
      // Simulated mid-write failure: some prefix may have reached the tmp
      // file, exactly as a full disk or crash would leave it.
      out.write(content.data(),
                static_cast<std::streamsize>(content.size() / 2));
      out.close();
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to " + tmp + " (injected)");
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to " + tmp);
    }
  }
  if (g_fail_stage == ScopedAtomicWriteFailure::kBeforeRename) {
    // Simulated crash between write and rename: the complete tmp file
    // stays behind (recovery ignores it) and the destination is intact.
    return Status::Unavailable("crash before rename of " + tmp +
                               " (injected)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace atis
