// QUEL session: binds range variables to relations and executes parsed
// statements through the relational operators (so every statement is
// metered like the paper's EQUEL programs).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "quel/ast.h"
#include "relational/relation.h"

namespace atis::quel {

/// Result of one executed statement.
struct QueryResult {
  Statement::Kind kind = Statement::Kind::kRange;
  /// RETRIEVE: projected column names and rows.
  std::vector<std::string> columns;
  std::vector<relational::Tuple> rows;
  /// APPEND / DELETE / REPLACE: tuples affected.
  size_t affected = 0;

  /// Renders a RETRIEVE result as an aligned text table.
  std::string ToString() const;
};

class QuelSession {
 public:
  /// Registers a relation under its query-visible name. The relation must
  /// outlive the session.
  void RegisterRelation(const std::string& name,
                        relational::Relation* relation);

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& statement);

  /// Executes an already-parsed statement.
  Result<QueryResult> Execute(const Statement& statement);

 private:
  Result<relational::Relation*> Resolve(const std::string& var) const;

  std::map<std::string, relational::Relation*> relations_;
  std::map<std::string, std::string> ranges_;  // var -> relation name
};

}  // namespace atis::quel
