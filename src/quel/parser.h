// Recursive-descent parser for the QUEL subset (see ast.h).
#pragma once

#include <string>

#include "quel/ast.h"
#include "util/status.h"

namespace atis::quel {

/// Parses one statement. Keywords are case-insensitive; identifiers are
/// case-sensitive. InvalidArgument with a position-annotated message on
/// syntax errors.
Result<Statement> ParseStatement(const std::string& text);

}  // namespace atis::quel
