#include "quel/executor.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "obs/trace.h"
#include "quel/parser.h"
#include "relational/operators.h"

namespace atis::quel {

using relational::AsDouble;
using relational::Relation;
using relational::Schema;
using relational::Tuple;

namespace {

/// Evaluates an expression against one tuple of the bound relation.
Result<double> Eval(const Expr& e, const std::string& bound_var,
                    const Schema& schema, const Tuple& tuple) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kFieldRef: {
      if (e.var != bound_var) {
        return Status::InvalidArgument("unbound range variable '" + e.var +
                                       "'");
      }
      const int idx = schema.FieldIndex(e.field);
      if (idx < 0) {
        return Status::InvalidArgument("no field '" + e.field + "'");
      }
      return AsDouble(tuple[static_cast<size_t>(idx)]);
    }
    case Expr::Kind::kBinary: {
      ATIS_ASSIGN_OR_RETURN(double l,
                            Eval(*e.lhs, bound_var, schema, tuple));
      ATIS_ASSIGN_OR_RETURN(double r,
                            Eval(*e.rhs, bound_var, schema, tuple));
      switch (e.op) {
        case BinaryOp::kAdd:
          return l + r;
        case BinaryOp::kSub:
          return l - r;
        case BinaryOp::kMul:
          return l * r;
        case BinaryOp::kDiv:
          if (r == 0.0) return Status::InvalidArgument("division by zero");
          return l / r;
      }
      return Status::Internal("bad binary op");
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> Matches(const Qualification& where,
                     const std::string& bound_var, const Schema& schema,
                     const Tuple& tuple) {
  for (const Comparison& cmp : where.terms) {
    ATIS_ASSIGN_OR_RETURN(double l,
                          Eval(*cmp.lhs, bound_var, schema, tuple));
    ATIS_ASSIGN_OR_RETURN(double r,
                          Eval(*cmp.rhs, bound_var, schema, tuple));
    bool ok = false;
    switch (cmp.op) {
      case CompareOp::kEq:
        ok = l == r;
        break;
      case CompareOp::kNe:
        ok = l != r;
        break;
      case CompareOp::kLt:
        ok = l < r;
        break;
      case CompareOp::kLe:
        ok = l <= r;
        break;
      case CompareOp::kGt:
        ok = l > r;
        break;
      case CompareOp::kGe:
        ok = l >= r;
        break;
    }
    if (!ok) return false;
  }
  return true;
}

/// Applies assignments to one tuple (integer fields are rounded).
Status Apply(const std::vector<Assignment>& values,
             const std::string& bound_var, const Schema& schema,
             Tuple* tuple) {
  for (const Assignment& a : values) {
    const int idx = schema.FieldIndex(a.field);
    if (idx < 0) {
      return Status::InvalidArgument("no field '" + a.field + "'");
    }
    ATIS_ASSIGN_OR_RETURN(double v,
                          Eval(*a.value, bound_var, schema, *tuple));
    if (relational::IsIntegerType(
            schema.field(static_cast<size_t>(idx)).type)) {
      (*tuple)[static_cast<size_t>(idx)] =
          static_cast<int64_t>(std::llround(v));
    } else {
      (*tuple)[static_cast<size_t>(idx)] = v;
    }
  }
  return Status::OK();
}

}  // namespace

std::string QueryResult::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out << (i ? " | " : "") << std::setw(12) << columns[i];
  }
  out << "\n";
  for (const Tuple& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i ? " | " : "") << std::setw(12);
      if (const int64_t* v = std::get_if<int64_t>(&row[i])) {
        out << *v;
      } else {
        out << AsDouble(row[i]);
      }
    }
    out << "\n";
  }
  return out.str();
}

void QuelSession::RegisterRelation(const std::string& name,
                                   Relation* relation) {
  relations_[name] = relation;
}

Result<Relation*> QuelSession::Resolve(const std::string& var) const {
  const auto range = ranges_.find(var);
  if (range == ranges_.end()) {
    return Status::InvalidArgument("no RANGE declared for '" + var + "'");
  }
  const auto rel = relations_.find(range->second);
  if (rel == relations_.end()) {
    return Status::NotFound("relation '" + range->second +
                            "' is not registered");
  }
  return rel->second;
}

Result<QueryResult> QuelSession::Execute(const std::string& statement) {
  ATIS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  return Execute(stmt);
}

namespace {

std::string_view StatementName(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::kRange:
      return "RANGE";
    case Statement::Kind::kRetrieve:
      return "RETRIEVE";
    case Statement::Kind::kAppend:
      return "APPEND";
    case Statement::Kind::kDelete:
      return "DELETE";
    case Statement::Kind::kReplace:
      return "REPLACE";
  }
  return "?";
}

}  // namespace

Result<QueryResult> QuelSession::Execute(const Statement& stmt) {
  obs::ScopedSpan span(std::string(StatementName(stmt.kind)), "statement");
  QueryResult out;
  out.kind = stmt.kind;
  switch (stmt.kind) {
    case Statement::Kind::kRange: {
      if (relations_.count(stmt.range.relation) == 0) {
        return Status::NotFound("relation '" + stmt.range.relation +
                                "' is not registered");
      }
      ranges_[stmt.range.var] = stmt.range.relation;
      return out;
    }
    case Statement::Kind::kRetrieve: {
      ATIS_ASSIGN_OR_RETURN(Relation * rel, Resolve(stmt.retrieve.var));
      const Schema& schema = rel->schema();
      std::vector<int> projection;
      if (stmt.retrieve.all) {
        for (size_t i = 0; i < schema.num_fields(); ++i) {
          projection.push_back(static_cast<int>(i));
          out.columns.push_back(schema.field(i).name);
        }
      } else {
        for (const std::string& f : stmt.retrieve.fields) {
          const int idx = schema.FieldIndex(f);
          if (idx < 0) {
            return Status::InvalidArgument("no field '" + f + "'");
          }
          projection.push_back(idx);
          out.columns.push_back(f);
        }
      }
      Status eval_error = Status::OK();
      ATIS_ASSIGN_OR_RETURN(
          auto matches,
          relational::SelectScan(
              *rel, [&](const Tuple& t) {
                auto m = Matches(stmt.retrieve.where, stmt.retrieve.var,
                                 schema, t);
                if (!m.ok()) {
                  eval_error = m.status();
                  return false;
                }
                return *m;
              }));
      ATIS_RETURN_NOT_OK(eval_error);
      for (const auto& m : matches) {
        Tuple row;
        row.reserve(projection.size());
        for (const int idx : projection) {
          row.push_back(m.tuple[static_cast<size_t>(idx)]);
        }
        out.rows.push_back(std::move(row));
      }
      return out;
    }
    case Statement::Kind::kAppend: {
      const auto rel = relations_.find(stmt.append.relation);
      if (rel == relations_.end()) {
        return Status::NotFound("relation '" + stmt.append.relation +
                                "' is not registered");
      }
      const Schema& schema = rel->second->schema();
      // Unassigned fields default to zero.
      Tuple tuple(schema.num_fields(), int64_t{0});
      for (size_t i = 0; i < schema.num_fields(); ++i) {
        if (!relational::IsIntegerType(schema.field(i).type)) {
          tuple[i] = 0.0;
        }
      }
      ATIS_RETURN_NOT_OK(Apply(stmt.append.values, /*bound_var=*/"",
                               schema, &tuple));
      ATIS_RETURN_NOT_OK(relational::Append(rel->second, tuple));
      out.affected = 1;
      return out;
    }
    case Statement::Kind::kDelete: {
      ATIS_ASSIGN_OR_RETURN(Relation * rel, Resolve(stmt.del.var));
      const Schema& schema = rel->schema();
      Status eval_error = Status::OK();
      ATIS_ASSIGN_OR_RETURN(
          out.affected,
          relational::DeleteWhere(rel, [&](const Tuple& t) {
            auto m = Matches(stmt.del.where, stmt.del.var, schema, t);
            if (!m.ok()) {
              eval_error = m.status();
              return false;
            }
            return *m;
          }));
      ATIS_RETURN_NOT_OK(eval_error);
      return out;
    }
    case Statement::Kind::kReplace: {
      ATIS_ASSIGN_OR_RETURN(Relation * rel, Resolve(stmt.replace.var));
      const Schema& schema = rel->schema();
      Status eval_error = Status::OK();
      ATIS_ASSIGN_OR_RETURN(
          out.affected,
          relational::Replace(
              rel,
              [&](const Tuple& t) {
                auto m = Matches(stmt.replace.where, stmt.replace.var,
                                 schema, t);
                if (!m.ok()) {
                  eval_error = m.status();
                  return false;
                }
                return *m;
              },
              [&](Tuple* t) {
                const Status st = Apply(stmt.replace.values,
                                        stmt.replace.var, schema, t);
                if (!st.ok()) eval_error = st;
              }));
      ATIS_RETURN_NOT_OK(eval_error);
      return out;
    }
  }
  return Status::Internal("bad statement kind");
}

}  // namespace atis::quel
