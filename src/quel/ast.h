// Abstract syntax for the QUEL subset (the paper's implementation
// language: its algorithms are EQUEL programs issuing RANGE / RETRIEVE /
// APPEND / DELETE / REPLACE statements against INGRES).
//
// Supported grammar:
//   RANGE OF var IS relation
//   RETRIEVE (var.field [, var.field ...]) [WHERE qual]
//   RETRIEVE (var.all) [WHERE qual]
//   APPEND TO relation (field = expr [, ...])
//   DELETE var [WHERE qual]
//   REPLACE var (field = expr [, ...]) [WHERE qual]
// qual: comparison (AND comparison)* ; comparison: expr OP expr with
// OP in { =, !=, <, <=, >, >= }.
// expr: number | var.field | expr (+|-|*|/) expr | ( expr )
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace atis::quel {

enum class BinaryOp { kAdd, kSub, kMul, kDiv };
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr {
  enum class Kind { kNumber, kFieldRef, kBinary } kind;
  // kNumber
  double number = 0.0;
  // kFieldRef
  std::string var;
  std::string field;
  // kBinary
  BinaryOp op = BinaryOp::kAdd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};

struct Comparison {
  std::unique_ptr<Expr> lhs;
  CompareOp op = CompareOp::kEq;
  std::unique_ptr<Expr> rhs;
};

/// Conjunction of comparisons (empty = always true).
struct Qualification {
  std::vector<Comparison> terms;
};

struct Assignment {
  std::string field;
  std::unique_ptr<Expr> value;
};

struct RangeStatement {
  std::string var;
  std::string relation;
};

struct RetrieveStatement {
  std::string var;                  ///< single range variable per query
  bool all = false;                 ///< RETRIEVE (v.all)
  std::vector<std::string> fields;  ///< when !all
  Qualification where;
};

struct AppendStatement {
  std::string relation;
  std::vector<Assignment> values;
};

struct DeleteStatement {
  std::string var;
  Qualification where;
};

struct ReplaceStatement {
  std::string var;
  std::vector<Assignment> values;
  Qualification where;
};

struct Statement {
  enum class Kind { kRange, kRetrieve, kAppend, kDelete, kReplace } kind;
  RangeStatement range;
  RetrieveStatement retrieve;
  AppendStatement append;
  DeleteStatement del;
  ReplaceStatement replace;
};

}  // namespace atis::quel
