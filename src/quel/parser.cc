#include "quel/parser.h"

#include <cctype>
#include <cstdlib>

namespace atis::quel {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kSymbol,  // ( ) , . = != < <= > >= + - * /
    kEnd,
  } kind = Kind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, "", pos_};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {Token::Kind::kIdent, text_.substr(start, pos_ - start),
                  start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      current_ = {Token::Kind::kNumber, text_.substr(start, pos_ - start),
                  start};
      return;
    }
    // Two-character operators first.
    if (pos_ + 1 < text_.size()) {
      const std::string two = text_.substr(pos_, 2);
      if (two == "!=" || two == "<=" || two == ">=") {
        pos_ += 2;
        current_ = {Token::Kind::kSymbol, two, pos_ - 2};
        return;
      }
    }
    ++pos_;
    current_ = {Token::Kind::kSymbol, std::string(1, c), pos_ - 1};
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  Result<Statement> Parse() {
    ATIS_ASSIGN_OR_RETURN(std::string kw, ExpectKeyword());
    Statement stmt;
    if (kw == "range") {
      stmt.kind = Statement::Kind::kRange;
      ATIS_RETURN_NOT_OK(Keyword("of"));
      ATIS_ASSIGN_OR_RETURN(stmt.range.var, Ident());
      ATIS_RETURN_NOT_OK(Keyword("is"));
      ATIS_ASSIGN_OR_RETURN(stmt.range.relation, Ident());
    } else if (kw == "retrieve") {
      stmt.kind = Statement::Kind::kRetrieve;
      ATIS_RETURN_NOT_OK(Symbol("("));
      ATIS_ASSIGN_OR_RETURN(stmt.retrieve.var, Ident());
      ATIS_RETURN_NOT_OK(Symbol("."));
      ATIS_ASSIGN_OR_RETURN(std::string first, Ident());
      if (Lower(first) == "all") {
        stmt.retrieve.all = true;
      } else {
        stmt.retrieve.fields.push_back(first);
        while (TrySymbol(",")) {
          ATIS_ASSIGN_OR_RETURN(std::string var, Ident());
          if (var != stmt.retrieve.var) {
            return Error("single range variable per RETRIEVE");
          }
          ATIS_RETURN_NOT_OK(Symbol("."));
          ATIS_ASSIGN_OR_RETURN(std::string f, Ident());
          stmt.retrieve.fields.push_back(std::move(f));
        }
      }
      ATIS_RETURN_NOT_OK(Symbol(")"));
      ATIS_RETURN_NOT_OK(OptionalWhere(&stmt.retrieve.where));
    } else if (kw == "append") {
      stmt.kind = Statement::Kind::kAppend;
      ATIS_RETURN_NOT_OK(Keyword("to"));
      ATIS_ASSIGN_OR_RETURN(stmt.append.relation, Ident());
      ATIS_ASSIGN_OR_RETURN(stmt.append.values, AssignmentList());
    } else if (kw == "delete") {
      stmt.kind = Statement::Kind::kDelete;
      ATIS_ASSIGN_OR_RETURN(stmt.del.var, Ident());
      ATIS_RETURN_NOT_OK(OptionalWhere(&stmt.del.where));
    } else if (kw == "replace") {
      stmt.kind = Statement::Kind::kReplace;
      ATIS_ASSIGN_OR_RETURN(stmt.replace.var, Ident());
      ATIS_ASSIGN_OR_RETURN(stmt.replace.values, AssignmentList());
      ATIS_RETURN_NOT_OK(OptionalWhere(&stmt.replace.where));
    } else {
      return Error("unknown statement '" + kw + "'");
    }
    if (lexer_.current().kind != Token::Kind::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        msg + " (at position " + std::to_string(lexer_.current().pos) +
        ")");
  }

  Result<std::string> ExpectKeyword() {
    if (lexer_.current().kind != Token::Kind::kIdent) {
      return Error("expected a keyword");
    }
    std::string kw = Lower(lexer_.current().text);
    lexer_.Advance();
    return kw;
  }

  Status Keyword(const std::string& expected) {
    if (lexer_.current().kind != Token::Kind::kIdent ||
        Lower(lexer_.current().text) != expected) {
      return Error("expected '" + expected + "'");
    }
    lexer_.Advance();
    return Status::OK();
  }

  Result<std::string> Ident() {
    if (lexer_.current().kind != Token::Kind::kIdent) {
      return Error("expected an identifier");
    }
    std::string name = lexer_.current().text;
    lexer_.Advance();
    return name;
  }

  Status Symbol(const std::string& sym) {
    if (lexer_.current().kind != Token::Kind::kSymbol ||
        lexer_.current().text != sym) {
      return Error("expected '" + sym + "'");
    }
    lexer_.Advance();
    return Status::OK();
  }

  bool TrySymbol(const std::string& sym) {
    if (lexer_.current().kind == Token::Kind::kSymbol &&
        lexer_.current().text == sym) {
      lexer_.Advance();
      return true;
    }
    return false;
  }

  bool TryKeyword(const std::string& kw) {
    if (lexer_.current().kind == Token::Kind::kIdent &&
        Lower(lexer_.current().text) == kw) {
      lexer_.Advance();
      return true;
    }
    return false;
  }

  Result<std::vector<Assignment>> AssignmentList() {
    ATIS_RETURN_NOT_OK(Symbol("("));
    std::vector<Assignment> out;
    do {
      Assignment a;
      ATIS_ASSIGN_OR_RETURN(a.field, Ident());
      ATIS_RETURN_NOT_OK(Symbol("="));
      ATIS_ASSIGN_OR_RETURN(a.value, ParseExpr());
      out.push_back(std::move(a));
    } while (TrySymbol(","));
    ATIS_RETURN_NOT_OK(Symbol(")"));
    return out;
  }

  Status OptionalWhere(Qualification* where) {
    if (!TryKeyword("where")) return Status::OK();
    do {
      Comparison cmp;
      ATIS_ASSIGN_OR_RETURN(cmp.lhs, ParseExpr());
      ATIS_ASSIGN_OR_RETURN(cmp.op, ParseCompareOp());
      ATIS_ASSIGN_OR_RETURN(cmp.rhs, ParseExpr());
      where->terms.push_back(std::move(cmp));
    } while (TryKeyword("and"));
    return Status::OK();
  }

  Result<CompareOp> ParseCompareOp() {
    if (lexer_.current().kind != Token::Kind::kSymbol) {
      return Error("expected a comparison operator");
    }
    const std::string sym = lexer_.current().text;
    lexer_.Advance();
    if (sym == "=") return CompareOp::kEq;
    if (sym == "!=") return CompareOp::kNe;
    if (sym == "<") return CompareOp::kLt;
    if (sym == "<=") return CompareOp::kLe;
    if (sym == ">") return CompareOp::kGt;
    if (sym == ">=") return CompareOp::kGe;
    return Error("unknown comparison '" + sym + "'");
  }

  // expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    ATIS_ASSIGN_OR_RETURN(auto lhs, ParseTerm());
    while (lexer_.current().kind == Token::Kind::kSymbol &&
           (lexer_.current().text == "+" || lexer_.current().text == "-")) {
      const BinaryOp op = lexer_.current().text == "+" ? BinaryOp::kAdd
                                                       : BinaryOp::kSub;
      lexer_.Advance();
      ATIS_ASSIGN_OR_RETURN(auto rhs, ParseTerm());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseTerm() {
    ATIS_ASSIGN_OR_RETURN(auto lhs, ParseFactor());
    while (lexer_.current().kind == Token::Kind::kSymbol &&
           (lexer_.current().text == "*" || lexer_.current().text == "/")) {
      const BinaryOp op = lexer_.current().text == "*" ? BinaryOp::kMul
                                                       : BinaryOp::kDiv;
      lexer_.Advance();
      ATIS_ASSIGN_OR_RETURN(auto rhs, ParseFactor());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseFactor() {
    if (TrySymbol("(")) {
      ATIS_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      ATIS_RETURN_NOT_OK(Symbol(")"));
      return inner;
    }
    if (TrySymbol("-")) {  // unary minus: 0 - factor
      ATIS_ASSIGN_OR_RETURN(auto inner, ParseFactor());
      auto zero = std::make_unique<Expr>();
      zero->kind = Expr::Kind::kNumber;
      zero->number = 0.0;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinaryOp::kSub;
      node->lhs = std::move(zero);
      node->rhs = std::move(inner);
      return node;
    }
    if (lexer_.current().kind == Token::Kind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->number = std::strtod(lexer_.current().text.c_str(), nullptr);
      lexer_.Advance();
      return node;
    }
    if (lexer_.current().kind == Token::Kind::kIdent) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kFieldRef;
      node->var = lexer_.current().text;
      lexer_.Advance();
      ATIS_RETURN_NOT_OK(Symbol("."));
      ATIS_ASSIGN_OR_RETURN(node->field, Ident());
      return node;
    }
    return Error("expected a number, field reference, or '('");
  }

  Lexer lexer_;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace atis::quel
