#include "costmodel/optimizer_sim.h"

#include <cmath>

namespace atis::costmodel {

CostPrediction OptimizerSimulation::Predict(core::Algorithm algorithm,
                                            double iterations,
                                            bool nested_loop_only) const {
  switch (algorithm) {
    case core::Algorithm::kIterative:
      return PredictIterative(params_, iterations, nested_loop_only);
    case core::Algorithm::kDijkstra:
    case core::Algorithm::kAStar:
      return PredictBestFirst(params_, iterations, nested_loop_only);
  }
  return CostPrediction{};
}

SimulationReport OptimizerSimulation::Validate(
    core::Algorithm algorithm, const core::PathResult& measured) const {
  SimulationReport report;
  report.algorithm = algorithm;
  report.iterations = static_cast<double>(measured.stats.iterations);
  report.predicted_cost =
      Predict(algorithm, report.iterations).total();
  report.measured_cost = measured.stats.cost_units;
  report.relative_error =
      report.measured_cost > 0.0
          ? (report.predicted_cost - report.measured_cost) /
                report.measured_cost
          : 0.0;
  return report;
}

relational::JoinCostEstimate OptimizerSimulation::ChooseAdjacencyJoin()
    const {
  relational::JoinStats stats;
  stats.left_blocks = 1;  // one current node
  stats.left_tuples = 1;
  stats.right_blocks = static_cast<size_t>(std::ceil(params_.blocks_s()));
  stats.result_blocks = 1;
  stats.right_has_index = true;
  stats.right_index_levels = 1;  // hash primary index on S.begin_node
  return relational::ChooseJoinStrategy(stats, params_.AsCostParams());
}

Result<EngineCalibration> CalibrateFromRuns(const core::PathResult& run_a,
                                            const core::PathResult& run_b) {
  const double ia = static_cast<double>(run_a.stats.iterations);
  const double ib = static_cast<double>(run_b.stats.iterations);
  if (ia == ib) {
    return Status::InvalidArgument(
        "calibration runs must have distinct iteration counts");
  }
  EngineCalibration cal;
  cal.per_iteration_cost =
      (run_a.stats.cost_units - run_b.stats.cost_units) / (ia - ib);
  cal.init_cost = run_a.stats.cost_units - ia * cal.per_iteration_cost;
  return cal;
}

ModelParams ParamsForGraph(const graph::Graph& g, const ModelParams& base) {
  ModelParams p = base;
  p.num_nodes = static_cast<int64_t>(g.num_nodes());
  p.num_edges = static_cast<int64_t>(g.num_edges());
  p.avg_degree = g.AverageDegree();
  return p;
}

}  // namespace atis::costmodel
