#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace atis::costmodel {

double JoinCostF(double b1, double b2, double b3, const ModelParams& p,
                 bool nested_loop_only) {
  if (nested_loop_only) {
    return b1 * p.t_read + (b1 * b2) * p.t_read + b3 * p.t_write;
  }
  relational::JoinStats stats;
  stats.left_blocks = static_cast<size_t>(std::ceil(std::max(b1, 0.0)));
  stats.right_blocks = static_cast<size_t>(std::ceil(std::max(b2, 0.0)));
  stats.result_blocks = static_cast<size_t>(std::ceil(std::max(b3, 0.0)));
  // The outer side's tuple count, needed by the primary-key strategy:
  // b1 blocks of R tuples.
  stats.left_tuples = static_cast<size_t>(
      std::ceil(std::max(b1, 0.0) * p.blocking_factor_r()));
  stats.right_has_index = true;  // S carries its primary hash index
  stats.right_index_levels = 1;
  return relational::ChooseJoinStrategy(stats, p.AsCostParams()).cost;
}

namespace {

/// C1..C4, shared by both models.
double InitCost(const ModelParams& p) {
  const double br = p.blocks_r();
  const double bs = p.blocks_s();
  const double c1 = p.create_relation;
  const double c2 = bs * p.t_read + br * p.t_write;
  const double c3 = 2.0 * (br * std::log2(std::max(br, 2.0)) + br) *
                    p.t_update();
  const double c4 = (p.isam_levels + p.selection_cardinality) *
                        p.t_update() +
                    br * p.t_read;
  return c1 + c2 + c3 + c4;
}

}  // namespace

CostPrediction PredictIterative(const ModelParams& p, double iterations,
                                bool nested_loop_only) {
  CostPrediction pred;
  pred.iterations = std::max(iterations, 1.0);
  pred.init_cost = InitCost(p);

  const double br = p.blocks_r();
  const double bs = p.blocks_s();
  // Average current-node count per iteration: |C| = |R| / B(L).
  const double current_nodes =
      static_cast<double>(p.num_nodes) / pred.iterations;
  const double bc =
      std::max(1.0, current_nodes / p.blocking_factor_r());
  const double b_join = std::max(
      1.0, static_cast<double>(p.num_edges) /
               (pred.iterations * p.blocking_factor_rs()));

  const double c5 = br * p.t_read;
  const double c6 = p.create_relation +
                    JoinCostF(bc, bs, b_join, p, nested_loop_only) +
                    p.delete_relation;
  const double c7 = 2.0 * br * p.t_update();
  const double c8 = br * p.t_read;
  pred.per_iteration_cost = c5 + c6 + c7 + c8;
  return pred;
}

CostPrediction PredictBestFirst(const ModelParams& p, double iterations,
                                bool nested_loop_only) {
  CostPrediction pred;
  pred.iterations = std::max(iterations, 1.0);
  pred.init_cost = InitCost(p);

  const double br = p.blocks_r();
  const double bs = p.blocks_s();
  const double probe = p.isam_levels + p.selection_cardinality;
  const double b_join =
      std::max(1.0, p.avg_degree / p.blocking_factor_rs());

  const double c5 = br * p.t_read;
  const double c6 = probe * p.t_update();
  const double c7 = JoinCostF(1.0, bs, b_join, p, nested_loop_only);
  const double c8 = br * p.t_read + p.t_write;
  const double c9 = probe * p.t_update();
  const double c10 = p.t_update();
  pred.per_iteration_cost = c5 + c6 + c7 + c8 + c9 + c10;
  return pred;
}

std::string FormatPrediction(const CostPrediction& pred) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << pred.total();
  return out.str();
}

}  // namespace atis::costmodel
