// The paper's "query optimizer simulation in C" (Section 4/5): predicts an
// algorithm's execution cost from the algebraic model plus the iteration
// count observed in an execution trace, choosing the cheapest join strategy
// per step, and validates predictions against metered runs.
#pragma once

#include "core/search_types.h"
#include "costmodel/cost_model.h"
#include "graph/graph.h"

namespace atis::costmodel {

/// Prediction-vs-measurement comparison for one run.
struct SimulationReport {
  core::Algorithm algorithm;
  double iterations = 0.0;
  double predicted_cost = 0.0;
  double measured_cost = 0.0;
  /// (predicted - measured) / measured.
  double relative_error = 0.0;
};

class OptimizerSimulation {
 public:
  explicit OptimizerSimulation(ModelParams params) : params_(params) {}

  const ModelParams& params() const { return params_; }

  /// Cost prediction given an iteration count from a trace.
  /// `nested_loop_only` fixes the Section 4.3 illustration's join choice.
  CostPrediction Predict(core::Algorithm algorithm, double iterations,
                         bool nested_loop_only = false) const;

  /// Compares a prediction against a metered database run.
  SimulationReport Validate(core::Algorithm algorithm,
                            const core::PathResult& measured) const;

  /// The join strategy the simulated optimizer picks for the per-iteration
  /// adjacency join of the best-first algorithms.
  relational::JoinCostEstimate ChooseAdjacencyJoin() const;

 private:
  ModelParams params_;
};

/// Trace-driven calibration, the paper's actual validation method: "the
/// simulation took the number of iterations from the execution trace of the
/// EQUEL programs to predict the execution-time". Two metered runs of the
/// same algorithm on the same graph determine the (init, per-iteration)
/// cost split; further runs are then predicted from their iteration counts
/// alone.
struct EngineCalibration {
  double init_cost = 0.0;
  double per_iteration_cost = 0.0;

  double Predict(double iterations) const {
    return init_cost + iterations * per_iteration_cost;
  }
};

/// Solves the 2x2 system from two runs with distinct iteration counts.
/// InvalidArgument when the counts coincide (the system is singular).
Result<EngineCalibration> CalibrateFromRuns(const core::PathResult& run_a,
                                            const core::PathResult& run_b);

/// Fills the graph-dependent fields of a parameter set (|S|, |R|, |A|)
/// from an in-memory graph, keeping Table 4A physical parameters.
ModelParams ParamsForGraph(const graph::Graph& g,
                           const ModelParams& base = Table4ADefaults());

}  // namespace atis::costmodel
