// Parameters of the algebraic cost model (Table 1 notation, Table 4A
// defaults).
#pragma once

#include <cmath>
#include <cstdint>

#include "storage/io_meter.h"

namespace atis::costmodel {

/// Everything Table 4A fixes, plus the graph-dependent inputs |S| and |R|.
struct ModelParams {
  // Fixed charges and index shape.
  double create_relation = 0.5;  ///< I: creating a temporary relation
  double delete_relation = 0.5;  ///< D_t
  int isam_levels = 3;           ///< I_l
  int selection_cardinality = 1; ///< S_r: tuples matched by a node-id select
  double avg_degree = 4.0;       ///< |A|: mean adjacency-list length

  // Relation sizes (graph-dependent; Table 4A uses the 30x30 grid).
  int64_t num_edges = 3480;      ///< |S|
  int64_t num_nodes = 900;       ///< |R|

  // Physical layout.
  int block_size = 4096;         ///< B
  int edge_tuple_size = 32;      ///< T_s
  int node_tuple_size = 16;      ///< T_r

  // Device times (abstract units).
  double t_read = 0.035;
  double t_write = 0.05;

  double t_update() const { return t_read + t_write; }

  // Derived blocking factors and block counts.
  int blocking_factor_s() const { return block_size / edge_tuple_size; }
  int blocking_factor_r() const { return block_size / node_tuple_size; }
  int blocking_factor_rs() const {
    return block_size / (edge_tuple_size + node_tuple_size);
  }
  double blocks_s() const {
    return std::ceil(static_cast<double>(num_edges) / blocking_factor_s());
  }
  double blocks_r() const {
    return std::ceil(static_cast<double>(num_nodes) / blocking_factor_r());
  }

  storage::CostParams AsCostParams() const {
    storage::CostParams p;
    p.t_read = t_read;
    p.t_write = t_write;
    p.create_relation = create_relation;
    p.delete_relation = delete_relation;
    return p;
  }
};

/// The exact parameter values of Table 4A (30x30 grid graph).
inline ModelParams Table4ADefaults() { return ModelParams{}; }

}  // namespace atis::costmodel
