// Algebraic cost models of Section 4 (Tables 2 and 3).
//
// The models decompose each algorithm into fixed initialisation steps plus
// a per-iteration cost Γ; total cost = Σ(init) + iterations × Γ_average.
// Like the paper, iteration counts are not predicted algebraically — they
// are extracted from execution traces of the actual algorithms and fed in.
#pragma once

#include <string>

#include "costmodel/params.h"
#include "relational/join.h"

namespace atis::costmodel {

/// A full prediction, with the init/per-iteration split exposed so callers
/// (and tests) can inspect each term.
struct CostPrediction {
  double init_cost = 0.0;           ///< C1 + C2 + C3 + C4
  double per_iteration_cost = 0.0;  ///< Γ_average
  double iterations = 0.0;          ///< B(L) or Z(n, L), from a trace
  double total() const { return init_cost + iterations * per_iteration_cost; }
};

/// Join cost function F(B1, B2, B3) of Section 4: cost of the cheapest
/// strategy for joining B1 blocks with B2 blocks producing B3 blocks.
/// `nested_loop_only` reproduces the Section 4.3 illustration, which fixes
/// the nested-loop strategy: F = B1*t_read + B1*B2*t_read + B3*t_write.
double JoinCostF(double b1, double b2, double b3, const ModelParams& p,
                 bool nested_loop_only = false);

/// Table 2: the Iterative algorithm.
///   C1 = I                                  (create resultant relation)
///   C2 = B_s*t_read + B_r*t_write           (initialise R from S)
///   C3 = 2*(B_r*log(B_r) + B_r)*t_update    (index/sort R by node id)
///   C4 = (I_l + S_r)*t_update + B_r*t_read  (mark start node current)
///   per iteration:
///   C5 = B_r*t_read                         (fetch current nodes)
///   C6 = I + F(B_c, B_s, B_join) + D_t      (materialise + join + drop the
///                                            per-iteration JOIN temporary)
///   C7 = 2*B_r*t_update                     (update status/path in R)
///   C8 = B_r*t_read                         (count current nodes)
/// with |C| = |R|/B(L), B_c = |C|/Bf_r, B_join = |S|/(B(L)*Bf_rs).
/// Calibration: with Table 4A parameters and B(L)=59 this gives 182.7
/// units vs Table 4B's 176.9 (+3.3%).
CostPrediction PredictIterative(const ModelParams& p, double iterations,
                                bool nested_loop_only = false);

/// Table 3: Dijkstra and A* (version 3) share the model; they differ only
/// in the iteration count fed in (the estimator changes Z(n,L), not Γ).
///   C1..C4 as above;
///   per iteration:
///   C5  = B_r*t_read                        (scan frontier for minimum)
///   C6  = (I_l + S_r)*t_update              (mark current)
///   C7  = F(1, B_s, B_join)                 (adjacency join; exactly one
///                                            current node per iteration,
///                                            B_join = |A|/Bf_rs)
///   C8  = B_r*t_read + t_write              (REPLACE improved neighbours:
///                                            scan R, write touched block)
///   C9  = (I_l + S_r)*t_update              (mark closed)
///   C10 = t_update                          (termination bookkeeping)
/// Calibration: with Table 4A parameters this yields Γ = 2.16 units per
/// iteration; against every Table 4B cell (two algorithms x three paths)
/// the prediction is within 0.5% (e.g. 1946 vs 1941.2 for Dijkstra on the
/// diagonal, 66.9 vs 66.7 for A* v3 on the horizontal path).
CostPrediction PredictBestFirst(const ModelParams& p, double iterations,
                                bool nested_loop_only = false);

/// Formats a prediction like a Table 4B cell.
std::string FormatPrediction(const CostPrediction& pred);

}  // namespace atis::costmodel
