// Static (random) hash index, the paper's primary index on S.begin_node.
//
// A fixed directory of bucket chains; each bucket is a linked list of index
// pages holding (key, RecordId) entries. A point lookup costs one block read
// per bucket page in the chain (typically 1), which is exactly what the
// paper's cost model charges for fetching a node's adjacency list.
//
// Bucket page layout:
//   [0..4)  next overflow page id (uint32; kInvalidPageId == none)
//   [4..6)  entry count (uint16)
//   [8..)   entries, 16 bytes each: {key i64, page u32, slot u16, pad u16}
#pragma once

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace atis::index {

class StaticHashIndex {
 public:
  /// `num_buckets` fixes the directory size for the index's lifetime.
  StaticHashIndex(storage::BufferPool* pool, size_t num_buckets);

  StaticHashIndex(const StaticHashIndex&) = delete;
  StaticHashIndex& operator=(const StaticHashIndex&) = delete;

  /// Adds an entry. Duplicate keys are allowed (multi-map semantics).
  Status Insert(int64_t key, storage::RecordId rid);

  /// Returns all record ids stored under `key` (possibly empty).
  Result<std::vector<storage::RecordId>> Lookup(int64_t key) const;

  /// Removes one entry matching (key, rid). NotFound if absent.
  Status Erase(int64_t key, storage::RecordId rid);

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_entries() const { return num_entries_; }

 private:
  static constexpr size_t kOffNext = 0;
  static constexpr size_t kOffCount = 4;
  static constexpr size_t kEntriesStart = 8;
  static constexpr size_t kEntrySize = 16;
  static constexpr size_t kEntriesPerPage =
      (storage::kPageSize - kEntriesStart) / kEntrySize;

  size_t BucketOf(int64_t key) const;
  Result<storage::PageId> NewBucketPage();

  storage::BufferPool* pool_;
  std::vector<storage::PageId> buckets_;  // head page of each chain
  size_t num_entries_ = 0;
};

}  // namespace atis::index
