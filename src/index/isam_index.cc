#include "index/isam_index.h"

#include <algorithm>
#include <cassert>

namespace atis::index {

using storage::kInvalidPageId;
using storage::Page;
using storage::PageGuard;
using storage::PageId;
using storage::RecordId;

namespace {

int64_t EntryKey(const Page& p, size_t i) {
  return p.ReadAt<int64_t>(16 + 16 * i);
}

RecordId EntryRid(const Page& p, size_t i) {
  const size_t base = 16 + 16 * i;
  return RecordId{p.ReadAt<uint32_t>(base + 8), p.ReadAt<uint16_t>(base + 12)};
}

void WriteLeafEntry(Page* p, size_t i, int64_t key, RecordId rid) {
  const size_t base = 16 + 16 * i;
  p->WriteAt<int64_t>(base, key);
  p->WriteAt<uint32_t>(base + 8, rid.page);
  p->WriteAt<uint16_t>(base + 12, rid.slot);
  p->WriteAt<uint16_t>(base + 14, 0);
}

PageId InnerChild(const Page& p, size_t i) {
  return p.ReadAt<uint32_t>(16 + 16 * i + 8);
}

void WriteInnerEntry(Page* p, size_t i, int64_t key, PageId child) {
  const size_t base = 16 + 16 * i;
  p->WriteAt<int64_t>(base, key);
  p->WriteAt<uint32_t>(base + 8, child);
  p->WriteAt<uint32_t>(base + 12, 0);
}

uint16_t Count(const Page& p) { return p.ReadAt<uint16_t>(8); }
void SetCount(Page* p, uint16_t c) { p->WriteAt<uint16_t>(8, c); }

}  // namespace

Status IsamIndex::Build(std::vector<Entry> entries, double fill_fraction) {
  if (built()) return Status::FailedPrecondition("ISAM index already built");
  if (fill_fraction <= 0.0 || fill_fraction > 1.0) {
    return Status::InvalidArgument("fill_fraction must be in (0, 1]");
  }
  if (!std::is_sorted(entries.begin(), entries.end(),
                      [](const Entry& a, const Entry& b) {
                        return a.key < b.key;
                      })) {
    return Status::InvalidArgument("ISAM bulk-build requires sorted input");
  }

  const size_t per_leaf = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(kEntriesPerPage) *
                             fill_fraction));

  // Level 0: leaves. Track (separator key, page) pairs for the level above.
  struct ChildRef {
    int64_t first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  PageId prev_leaf = kInvalidPageId;
  size_t i = 0;
  do {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    Page& p = guard.MutablePage();
    p.WriteAt<uint32_t>(kOffNextLeaf, kInvalidPageId);
    p.WriteAt<uint32_t>(kOffOverflow, kInvalidPageId);
    const size_t take = std::min(per_leaf, entries.size() - i);
    for (size_t j = 0; j < take; ++j) {
      WriteLeafEntry(&p, j, entries[i + j].key, entries[i + j].rid);
    }
    SetCount(&p, static_cast<uint16_t>(take));
    if (prev_leaf != kInvalidPageId) {
      ATIS_ASSIGN_OR_RETURN(PageGuard prev, pool_->FetchPage(prev_leaf));
      prev.MutablePage().WriteAt<uint32_t>(kOffNextLeaf, guard.id());
    } else {
      first_leaf_ = guard.id();
    }
    prev_leaf = guard.id();
    level.push_back(
        {take > 0 ? entries[i].key : INT64_MIN, guard.id()});
    i += take;
  } while (i < entries.size());

  num_levels_ = 1;
  // Build inner levels until a single root remains.
  while (level.size() > 1) {
    std::vector<ChildRef> next;
    for (size_t j = 0; j < level.size(); j += kEntriesPerPage) {
      ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
      Page& p = guard.MutablePage();
      const size_t take = std::min(kEntriesPerPage, level.size() - j);
      for (size_t k = 0; k < take; ++k) {
        WriteInnerEntry(&p, k, level[j + k].first_key, level[j + k].page);
      }
      SetCount(&p, static_cast<uint16_t>(take));
      next.push_back({level[j].first_key, guard.id()});
    }
    level = std::move(next);
    ++num_levels_;
  }
  root_ = level.front().page;
  num_entries_ = entries.size();
  return Status::OK();
}

Result<PageId> IsamIndex::FindLeaf(int64_t key) const {
  if (!built()) return Status::FailedPrecondition("ISAM index not built");
  PageId id = root_;
  for (size_t level = 1; level < num_levels_; ++level) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const Page& p = guard.page();
    const uint16_t count = Count(p);
    // Last child whose separator key is <= key; first child if key is
    // smaller than every separator.
    size_t pick = 0;
    for (size_t j = 1; j < count; ++j) {
      if (EntryKey(p, j) <= key) {
        pick = j;
      } else {
        break;
      }
    }
    id = InnerChild(p, pick);
  }
  return id;
}

Result<RecordId> IsamIndex::Lookup(int64_t key) const {
  ATIS_ASSIGN_OR_RETURN(auto all, LookupAll(key));
  if (all.empty()) return Status::NotFound("key not in ISAM index");
  return all.front();
}

Result<std::vector<RecordId>> IsamIndex::LookupAll(int64_t key) const {
  ATIS_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  std::vector<RecordId> out;
  // Duplicates can run into following leaves; walk until keys exceed `key`.
  PageId id = leaf;
  while (id != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const Page& p = guard.page();
    const uint16_t count = Count(p);
    bool past = false;
    for (size_t j = 0; j < count; ++j) {
      const int64_t k = EntryKey(p, j);
      if (k == key) out.push_back(EntryRid(p, j));
      if (k > key) past = true;
    }
    // Overflow pages are unsorted: always scan the chain of this leaf.
    PageId ov = p.ReadAt<uint32_t>(kOffOverflow);
    while (ov != kInvalidPageId) {
      ATIS_ASSIGN_OR_RETURN(PageGuard og, pool_->FetchPage(ov));
      const Page& op = og.page();
      const uint16_t oc = Count(op);
      for (size_t j = 0; j < oc; ++j) {
        if (EntryKey(op, j) == key) out.push_back(EntryRid(op, j));
      }
      ov = op.ReadAt<uint32_t>(kOffNextLeaf);
    }
    if (past || count == 0) break;
    // Continue only if this leaf's last key still equals `key`.
    if (EntryKey(p, count - 1) > key) break;
    if (EntryKey(p, count - 1) < key) break;
    id = p.ReadAt<uint32_t>(kOffNextLeaf);
  }
  return out;
}

Status IsamIndex::Insert(int64_t key, RecordId rid) {
  ATIS_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf));
  Page& p = guard.MutablePage();
  const uint16_t count = Count(p);
  if (count < kEntriesPerPage) {
    // Insert in sorted position (shift right).
    size_t pos = count;
    for (size_t j = 0; j < count; ++j) {
      if (EntryKey(p, j) > key) {
        pos = j;
        break;
      }
    }
    for (size_t j = count; j > pos; --j) {
      WriteLeafEntry(&p, j, EntryKey(p, j - 1), EntryRid(p, j - 1));
    }
    WriteLeafEntry(&p, pos, key, rid);
    SetCount(&p, static_cast<uint16_t>(count + 1));
    ++num_entries_;
    return Status::OK();
  }
  // Leaf full: append to its overflow chain.
  PageId ov = p.ReadAt<uint32_t>(kOffOverflow);
  PageId prev = leaf;
  bool prev_is_leaf = true;
  while (ov != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard og, pool_->FetchPage(ov));
    const uint16_t oc = Count(og.page());
    if (oc < kEntriesPerPage) {
      Page& op = og.MutablePage();
      WriteLeafEntry(&op, oc, key, rid);
      SetCount(&op, static_cast<uint16_t>(oc + 1));
      ++num_entries_;
      return Status::OK();
    }
    prev = ov;
    prev_is_leaf = false;
    ov = og.page().ReadAt<uint32_t>(kOffNextLeaf);
  }
  ATIS_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
  Page& fp = fresh.MutablePage();
  fp.WriteAt<uint32_t>(kOffNextLeaf, kInvalidPageId);
  fp.WriteAt<uint32_t>(kOffOverflow, kInvalidPageId);
  WriteLeafEntry(&fp, 0, key, rid);
  SetCount(&fp, 1);
  ATIS_ASSIGN_OR_RETURN(PageGuard pg, pool_->FetchPage(prev));
  pg.MutablePage().WriteAt<uint32_t>(
      prev_is_leaf ? kOffOverflow : kOffNextLeaf, fresh.id());
  ++num_entries_;
  return Status::OK();
}

Status IsamIndex::Erase(int64_t key, RecordId rid) {
  ATIS_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf));
  {
    Page& p = guard.MutablePage();
    const uint16_t count = Count(p);
    for (size_t j = 0; j < count; ++j) {
      if (EntryKey(p, j) == key && EntryRid(p, j) == rid) {
        for (size_t k = j; k + 1 < count; ++k) {
          WriteLeafEntry(&p, k, EntryKey(p, k + 1), EntryRid(p, k + 1));
        }
        SetCount(&p, static_cast<uint16_t>(count - 1));
        --num_entries_;
        return Status::OK();
      }
    }
  }
  PageId ov = guard.page().ReadAt<uint32_t>(kOffOverflow);
  while (ov != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard og, pool_->FetchPage(ov));
    Page& op = og.MutablePage();
    const uint16_t oc = Count(op);
    for (size_t j = 0; j < oc; ++j) {
      if (EntryKey(op, j) == key && EntryRid(op, j) == rid) {
        if (j + 1 < oc) {
          WriteLeafEntry(&op, j, EntryKey(op, oc - 1), EntryRid(op, oc - 1));
        }
        SetCount(&op, static_cast<uint16_t>(oc - 1));
        --num_entries_;
        return Status::OK();
      }
    }
    ov = op.ReadAt<uint32_t>(kOffNextLeaf);
  }
  return Status::NotFound("ISAM entry not found");
}

Result<std::vector<IsamIndex::Entry>> IsamIndex::Scan(int64_t lo,
                                                      int64_t hi) const {
  if (!built()) return Status::FailedPrecondition("ISAM index not built");
  ATIS_ASSIGN_OR_RETURN(PageId id, FindLeaf(lo));
  std::vector<Entry> out;
  while (id != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const Page& p = guard.page();
    const uint16_t count = Count(p);
    bool past_hi = false;
    for (size_t j = 0; j < count; ++j) {
      const int64_t k = EntryKey(p, j);
      if (k > hi) {
        past_hi = true;
        break;
      }
      if (k >= lo) out.push_back({k, EntryRid(p, j)});
    }
    PageId ov = p.ReadAt<uint32_t>(kOffOverflow);
    while (ov != kInvalidPageId) {
      ATIS_ASSIGN_OR_RETURN(PageGuard og, pool_->FetchPage(ov));
      const Page& op = og.page();
      const uint16_t oc = Count(op);
      for (size_t j = 0; j < oc; ++j) {
        const int64_t k = EntryKey(op, j);
        if (k >= lo && k <= hi) out.push_back({k, EntryRid(op, j)});
      }
      ov = op.ReadAt<uint32_t>(kOffNextLeaf);
    }
    if (past_hi) break;
    id = p.ReadAt<uint32_t>(kOffNextLeaf);
  }
  return out;
}

}  // namespace atis::index
