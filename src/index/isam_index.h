// Static multi-level ISAM index, the paper's primary index on R.node_id.
//
// The tree is bulk-built from sorted (key, RecordId) pairs and its inner
// structure never changes; later inserts that do not fit in their leaf go to
// per-leaf overflow chains (classic ISAM). A point lookup reads one block
// per level (the paper's I_l) plus any overflow pages.
//
// Leaf page:   [0..4) next leaf | [4..8) overflow page | [8..10) count
//              entries from byte 16, 16 B each {key i64, page u32, slot u16}
// Inner page:  [8..10) count; entries from byte 16, 16 B each
//              {separator key i64, child page u32} — child covers keys >= its
//              separator and < the next separator.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace atis::index {

class IsamIndex {
 public:
  struct Entry {
    int64_t key;
    storage::RecordId rid;
  };

  explicit IsamIndex(storage::BufferPool* pool) : pool_(pool) {}

  IsamIndex(const IsamIndex&) = delete;
  IsamIndex& operator=(const IsamIndex&) = delete;

  /// Bulk-builds the static levels. `entries` must be sorted by key
  /// (duplicates allowed). May be called once per index.
  /// `fill_fraction` in (0,1] leaves slack in each leaf for later inserts.
  Status Build(std::vector<Entry> entries, double fill_fraction = 1.0);

  /// Finds the first entry with exactly `key`. NotFound if absent.
  Result<storage::RecordId> Lookup(int64_t key) const;

  /// Finds all entries with exactly `key`.
  Result<std::vector<storage::RecordId>> LookupAll(int64_t key) const;

  /// Inserts post-build; overflow chains absorb pages that are full.
  Status Insert(int64_t key, storage::RecordId rid);

  /// Removes one entry matching (key, rid).
  Status Erase(int64_t key, storage::RecordId rid);

  /// Number of block reads on the root-to-leaf path (the paper's I_l).
  size_t num_levels() const { return num_levels_; }
  size_t num_entries() const { return num_entries_; }
  bool built() const { return root_ != storage::kInvalidPageId; }

  /// In-order scan of [lo, hi] inclusive (overflow entries included, after
  /// their leaf's sorted entries).
  Result<std::vector<Entry>> Scan(int64_t lo, int64_t hi) const;

 private:
  static constexpr size_t kOffNextLeaf = 0;
  static constexpr size_t kOffOverflow = 4;
  static constexpr size_t kOffCount = 8;
  static constexpr size_t kEntriesStart = 16;
  static constexpr size_t kEntrySize = 16;
  static constexpr size_t kEntriesPerPage =
      (storage::kPageSize - kEntriesStart) / kEntrySize;

  Result<storage::PageId> FindLeaf(int64_t key) const;

  storage::BufferPool* pool_;
  storage::PageId root_ = storage::kInvalidPageId;
  storage::PageId first_leaf_ = storage::kInvalidPageId;
  size_t num_levels_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace atis::index
