#include "index/hash_index.h"

#include <cassert>

namespace atis::index {

using storage::kInvalidPageId;
using storage::PageGuard;
using storage::PageId;
using storage::RecordId;

namespace {

struct Entry {
  int64_t key;
  PageId page;
  uint16_t slot;
};

Entry ReadEntry(const storage::Page& p, size_t i) {
  const size_t base = 8 + 16 * i;
  Entry e;
  e.key = p.ReadAt<int64_t>(base);
  e.page = p.ReadAt<uint32_t>(base + 8);
  e.slot = p.ReadAt<uint16_t>(base + 12);
  return e;
}

void WriteEntry(storage::Page* p, size_t i, int64_t key, RecordId rid) {
  const size_t base = 8 + 16 * i;
  p->WriteAt<int64_t>(base, key);
  p->WriteAt<uint32_t>(base + 8, rid.page);
  p->WriteAt<uint16_t>(base + 12, rid.slot);
  p->WriteAt<uint16_t>(base + 14, 0);
}

// Fibonacci hashing: spreads consecutive node ids uniformly, which models
// the paper's "random hash" primary index.
uint64_t HashKey(int64_t key) {
  return static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
}

}  // namespace

StaticHashIndex::StaticHashIndex(storage::BufferPool* pool, size_t num_buckets)
    : pool_(pool), buckets_(num_buckets == 0 ? 1 : num_buckets,
                            kInvalidPageId) {}

size_t StaticHashIndex::BucketOf(int64_t key) const {
  return static_cast<size_t>(HashKey(key) % buckets_.size());
}

Result<PageId> StaticHashIndex::NewBucketPage() {
  ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  storage::Page& p = guard.MutablePage();
  p.WriteAt<uint32_t>(kOffNext, kInvalidPageId);
  p.WriteAt<uint16_t>(kOffCount, 0);
  return guard.id();
}

Status StaticHashIndex::Insert(int64_t key, RecordId rid) {
  const size_t b = BucketOf(key);
  if (buckets_[b] == kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(buckets_[b], NewBucketPage());
  }
  // Walk the chain to its tail, inserting into the first page with room.
  PageId id = buckets_[b];
  while (true) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const uint16_t count = guard.page().ReadAt<uint16_t>(kOffCount);
    if (count < kEntriesPerPage) {
      storage::Page& p = guard.MutablePage();
      WriteEntry(&p, count, key, rid);
      p.WriteAt<uint16_t>(kOffCount, static_cast<uint16_t>(count + 1));
      ++num_entries_;
      return Status::OK();
    }
    const PageId next = guard.page().ReadAt<uint32_t>(kOffNext);
    if (next == kInvalidPageId) {
      ATIS_ASSIGN_OR_RETURN(PageId fresh, NewBucketPage());
      guard.MutablePage().WriteAt<uint32_t>(kOffNext, fresh);
      id = fresh;
    } else {
      id = next;
    }
  }
}

Result<std::vector<RecordId>> StaticHashIndex::Lookup(int64_t key) const {
  std::vector<RecordId> out;
  PageId id = buckets_[BucketOf(key)];
  while (id != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const storage::Page& p = guard.page();
    const uint16_t count = p.ReadAt<uint16_t>(kOffCount);
    for (uint16_t i = 0; i < count; ++i) {
      const Entry e = ReadEntry(p, i);
      if (e.key == key) out.push_back(RecordId{e.page, e.slot});
    }
    id = p.ReadAt<uint32_t>(kOffNext);
  }
  return out;
}

Status StaticHashIndex::Erase(int64_t key, RecordId rid) {
  PageId id = buckets_[BucketOf(key)];
  while (id != kInvalidPageId) {
    ATIS_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(id));
    const uint16_t count = guard.page().ReadAt<uint16_t>(kOffCount);
    for (uint16_t i = 0; i < count; ++i) {
      const Entry e = ReadEntry(guard.page(), i);
      if (e.key == key && e.page == rid.page && e.slot == rid.slot) {
        storage::Page& p = guard.MutablePage();
        // Swap-with-last keeps entries dense.
        if (i + 1 < count) {
          const Entry last = ReadEntry(p, count - 1);
          WriteEntry(&p, i, last.key, RecordId{last.page, last.slot});
        }
        p.WriteAt<uint16_t>(kOffCount, static_cast<uint16_t>(count - 1));
        --num_entries_;
        return Status::OK();
      }
    }
    id = guard.page().ReadAt<uint32_t>(kOffNext);
  }
  return Status::NotFound("hash index entry not found");
}

}  // namespace atis::index
